package simrankd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"oipsr/simrank/query"
)

// Batched serving: POST /v1/batch answers many sources in one request
// through the shared-traversal MultiSource/TopKBatch path of simrank/query,
// streaming one NDJSON line per source; POST /v1/join serves the all-pairs
// top-k similarity join.
//
// Batch lines are byte-identical to the corresponding single-endpoint
// responses and share their cache entries (same generation-aware keys), so
// a batch warms the cache for /v1/topk and /v1/single_source and vice
// versa. Items fail independently: an out-of-range source yields an error
// line in its position while the rest of the batch is answered normally.

// maxRequestBody bounds every JSON request body (/v1/batch, /v1/join,
// /v1/edges): ~8 MB is thousands of sources or tens of thousands of edits,
// far beyond a sane online request.
const maxRequestBody = 8 << 20

// maxDenseBatchScores bounds the total score values a dense (no "min")
// single_source batch may produce: dense rows are O(n) each and the whole
// NDJSON response is buffered before streaming, so without this cap one
// modest-looking request on a large graph could hold gigabytes of response.
// 8M float64 scores is 64 MB of rows before encoding. The same figure
// bounds the per-chunk MultiSource intermediate of every batch mode (see
// batchChunk) — there the response stays small, so chunking suffices and
// no request has to be refused.
const maxDenseBatchScores = 8 << 20

// batchChunk returns how many sources one MultiSource call may carry so
// its dense intermediate rows stay within maxDenseBatchScores.
func batchChunk(n int) int {
	chunk := maxDenseBatchScores / max(n, 1)
	return max(chunk, 1)
}

type batchRequest struct {
	// Mode selects the per-source query: "topk" (the default) or
	// "single_source".
	Mode    string `json:"mode"`
	Sources []int  `json:"sources"`
	// K and Rerank apply to topk mode only.
	K      int  `json:"k"`
	Rerank bool `json:"rerank"`
	// Min applies to single_source mode only: present means the sparse,
	// thresholded response form (the only cacheable one).
	Min *float64 `json:"min"`
}

// batchItemError is the NDJSON line of a failed batch item.
type batchItemError struct {
	Source int    `json:"source"`
	Error  string `json:"error"`
}

// batchTerminal is the final NDJSON line of a stream cut short: once the
// 200 status and earlier lines are on the wire, a mid-stream cancellation
// (graceful-shutdown drain expiry, deadline, client gone) can only be
// reported in-band. Clients distinguish it from item lines by the
// "truncated" field.
type batchTerminal struct {
	Error     string `json:"error"`
	Truncated bool   `json:"truncated"`
}

// decodeJSONBody decodes a bounded, strict JSON request body, translating
// the oversize error. Returns false after answering the request.
func (sv *serving) decodeJSONBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			sv.writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxRequestBody)
			return false
		}
		sv.writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

// handleBatch serves POST /v1/batch: one NDJSON response line per source,
// in request order. Request-level problems (malformed JSON, unknown mode,
// bad k, too many sources) fail the whole request with a JSON error;
// per-source problems (an out-of-range id) fail only their own line.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.reqBatch.Add(1)
	if !s.checkMethod(w, r, http.MethodPost) {
		return
	}
	if !s.requireWalkEngine(w, r) {
		return
	}
	var req batchRequest
	if !s.decodeJSONBody(w, r, &req) {
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = "topk"
	}
	switch mode {
	case "topk":
		if req.Min != nil {
			s.writeError(w, http.StatusBadRequest, "\"min\" is only valid in single_source mode")
			return
		}
		if req.K == 0 {
			req.K = 10
		}
		if req.K < 1 {
			s.writeError(w, http.StatusBadRequest, "top-k size %d < 1", req.K)
			return
		}
	case "single_source":
		if req.K != 0 || req.Rerank {
			s.writeError(w, http.StatusBadRequest, "\"k\" and \"rerank\" are only valid in topk mode")
			return
		}
	default:
		s.writeError(w, http.StatusBadRequest, "unknown mode %q (want \"topk\" or \"single_source\")", mode)
		return
	}
	if len(req.Sources) > s.maxBatch {
		s.writeError(w, http.StatusBadRequest, "batch of %d sources exceeds the %d limit", len(req.Sources), s.maxBatch)
		return
	}
	if mode == "single_source" && req.Min == nil {
		s.mu.RLock()
		n := s.idx.N()
		s.mu.RUnlock()
		if int64(len(req.Sources))*int64(n) > maxDenseBatchScores {
			s.writeError(w, http.StatusBadRequest,
				"dense batch of %d sources on %d vertices exceeds %d total scores; pass \"min\" or split the batch",
				len(req.Sources), n, maxDenseBatchScores)
			return
		}
	}
	s.batchItems.Add(int64(len(req.Sources)))

	// Compute every line under the read lock, then release it before
	// streaming: a slow client must not block /v1/edges.
	lines, itemErrors, degraded, err := s.computeBatchLines(r.Context(), &req, mode)
	if err != nil {
		// The only error sources are the context (deadline, drain) and
		// encoding; writeQueryError maps the former, 500 covers the rest.
		s.writeQueryError(w, err, http.StatusInternalServerError)
		return
	}
	s.batchItemErrors.Add(itemErrors)
	if degraded {
		s.degradedTotal.Add(1)
		w.Header().Set("X-Simrank-Degraded", "true")
	}

	s.streamNDJSON(w, r, lines)
}

// computeBatchLines resolves a validated batch request into one response
// line per source: per-item validation, cache lookups, one shared-traversal
// call per chunk for the misses, and cache fills. It holds the read lock
// for the whole computation so every line reflects one index generation.
// degraded reports that at least one chunk was served raw estimates
// because the remaining deadline could not afford its exact rerank.
func (s *Server) computeBatchLines(ctx context.Context, req *batchRequest, mode string) (lines [][]byte, itemErrors int64, degraded bool, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()

	gen := s.idx.Generation()
	n := s.idx.N()
	sparse := req.Min != nil
	var minVal float64
	if sparse {
		minVal = *req.Min
	}

	lines = make([][]byte, len(req.Sources))
	// Misses are deduplicated per source id: the per-item parameters are
	// shared batch-wide, so duplicate sources are computed (and cached)
	// once and their lines reused.
	missSlot := make(map[int]int)
	var miss []int
	for i, q := range req.Sources {
		if q < 0 || q >= n {
			line, merr := s.marshalBody(batchItemError{Source: q, Error: fmt.Sprintf("query: vertex %d out of range [0,%d)", q, n)})
			if merr != nil {
				return nil, 0, false, merr
			}
			lines[i] = line
			itemErrors++
			continue
		}
		var key string
		cacheable := mode == "topk" || sparse
		if cacheable {
			if mode == "topk" {
				key = topKCacheKey(gen, q, req.K, req.Rerank)
			} else {
				key = ssCacheKey(gen, q, minVal)
			}
			if body, ok := s.cache.Get(key); ok {
				lines[i] = body
				continue
			}
		}
		if _, ok := missSlot[q]; !ok {
			missSlot[q] = len(miss)
			miss = append(miss, q)
		}
	}
	if len(miss) == 0 {
		return lines, itemErrors, false, nil
	}

	// Misses run through the shared traversal in chunks: MultiSource holds
	// one dense float64 row per source, so an unchunked batch on a large
	// graph would pin len(miss)*n*8 bytes at once. Each chunk's rows are
	// released before the next starts; per-source results are unaffected
	// (every row is independent of which batch it was computed in).
	bodies := make([][]byte, len(miss))
	chunk := batchChunk(n)
	for lo := 0; lo < len(miss); lo += chunk {
		hi := min(lo+chunk, len(miss))
		switch mode {
		case "topk":
			// The degrade decision is per chunk: the rerank budget check
			// sees the whole chunk's candidate volume against the remaining
			// deadline, so a batch that starts exact can finish degraded as
			// the budget drains — each line honestly marked.
			useRerank := req.Rerank
			pool := s.idx.RerankPoolSize(req.K, 0)
			chunkDegraded := useRerank && s.shouldDegrade(ctx, pool*(hi-lo))
			if chunkDegraded {
				useRerank = false
				degraded = true
			}
			t1 := time.Now()
			results, berr := s.idx.TopKBatch(ctx, miss[lo:hi], req.K, &query.TopKOptions{Rerank: useRerank}, s.workers)
			if berr != nil {
				return nil, 0, false, berr
			}
			if useRerank {
				s.observeRerank(time.Since(t1), pool*(hi-lo))
			}
			for j, q := range miss[lo:hi] {
				body, berr := s.topKBody(q, req.K, useRerank, chunkDegraded, results[j])
				if berr != nil {
					return nil, 0, false, berr
				}
				bodies[lo+j] = body
				if !chunkDegraded {
					s.cache.Put(topKCacheKey(gen, q, req.K, req.Rerank), body)
				}
			}
		case "single_source":
			rows, berr := s.idx.MultiSource(ctx, miss[lo:hi], s.workers)
			if berr != nil {
				return nil, 0, false, berr
			}
			for j, q := range miss[lo:hi] {
				body, berr := s.singleSourceBody(q, rows[j], sparse, minVal, false)
				if berr != nil {
					return nil, 0, false, berr
				}
				bodies[lo+j] = body
				if sparse {
					// The same policy as /v1/single_source: dense rows are
					// O(n) bytes and stay out of the cache.
					s.cache.Put(ssCacheKey(gen, q, minVal), body)
				}
			}
		}
	}
	for i, q := range req.Sources {
		if lines[i] == nil {
			lines[i] = bodies[missSlot[q]]
		}
	}
	return lines, itemErrors, degraded, nil
}

type joinRequest struct {
	K             int     `json:"k"`
	Threshold     float64 `json:"threshold"`
	MaxCandidates int     `json:"max_candidates"`
}

type joinResponse struct {
	K         int              `json:"k"`
	Threshold float64          `json:"threshold"`
	Pairs     []query.JoinPair `json:"pairs"`
	// Degraded marks a router-merged join missing at least one backend's
	// candidates or scores. The single-node daemon never sets it.
	Degraded bool `json:"degraded,omitempty"`
}

// handleJoin serves POST /v1/join: the top-k similarity join over all
// vertex pairs at a score threshold. Responses are cached under the
// generation-aware key of their canonicalized parameters.
func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	s.reqJoin.Add(1)
	if !s.checkMethod(w, r, http.MethodPost) {
		return
	}
	if !s.requireWalkEngine(w, r) {
		return
	}
	var req joinRequest
	if !s.decodeJSONBody(w, r, &req) {
		return
	}
	if req.K == 0 {
		req.K = 10
	}
	maxCand := req.MaxCandidates
	if maxCand <= 0 || maxCand > s.joinMaxCand {
		maxCand = s.joinMaxCand
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	key := fmt.Sprintf("g%d:join:%d:%s:%d", s.idx.Generation(), req.K,
		strconv.FormatFloat(req.Threshold, 'g', -1, 64), maxCand)
	if body, ok := s.cache.Get(key); ok {
		writeJSONBytes(w, body)
		return
	}
	pairs, err := s.idx.Join(r.Context(), req.K, req.Threshold, &query.JoinOptions{MaxCandidates: maxCand, Workers: s.workers})
	if err != nil {
		// A too-dense join is the client's to fix (raise the threshold or
		// lower k); so are out-of-range parameters. Context errors map to
		// 503 as everywhere.
		s.writeQueryError(w, err, http.StatusBadRequest)
		return
	}
	body, err := s.marshalBody(joinResponse{K: req.K, Threshold: req.Threshold, Pairs: pairs})
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	// The LRU is entry-count bounded, so only modest bodies may enter it —
	// the same reasoning that keeps dense single-source rows out. A join
	// with a large k can legitimately return megabytes; serve it, don't
	// cache it.
	if len(body) <= maxCachedJoinBody {
		s.cache.Put(key, body)
	}
	writeJSONBytes(w, body)
}

// maxCachedJoinBody bounds the join response bodies admitted to the LRU
// (whose capacity counts entries, not bytes). 256 KiB is thousands of
// pairs; anything larger is recomputed per request rather than allowed to
// blow up resident cache memory.
const maxCachedJoinBody = 256 << 10
