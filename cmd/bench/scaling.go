package main

import (
	"fmt"
	"runtime"
	"time"

	"oipsr/simrank"
)

// runScaling measures wall-clock speedup of the parallel sweep engine versus
// worker count on the BerkStan-like power-law workload: OIP-SR and OIP-DSR
// exercise the chain-level worker pool, psum-SR the row-parallel baseline
// loop. Workers: 1 is the serial engine; perfect scaling halves the time at
// every doubling until the chain/row granularity or the hardware runs out.
func runScaling(cfg config) {
	header("Scaling: time vs worker-pool size", "parallel sweep engine")
	g := webGraph(cfg)
	const k = 10
	fmt.Printf("workload: n=%d m=%d d=%.1f  K=%d  GOMAXPROCS=%d\n",
		g.NumVertices(), g.NumEdges(), g.AvgInDegree(), k, runtime.GOMAXPROCS(0))
	fmt.Printf("%-8s | %12s %8s | %12s %8s | %12s %8s\n",
		"workers", "OIP-SR", "spdup", "OIP-DSR", "spdup", "psum-SR", "spdup")

	algos := []simrank.Algorithm{simrank.OIPSR, simrank.OIPDSR, simrank.PsumSR}
	base := map[simrank.Algorithm]time.Duration{}
	for _, w := range []int{1, 2, 4, 8} {
		times := map[simrank.Algorithm]time.Duration{}
		for _, alg := range algos {
			t, st, err := timeAlgo(g, simrank.Options{Algorithm: alg, C: 0.6, K: k, Workers: w})
			must(err)
			times[alg] = t
			if w == 1 {
				base[alg] = t
			}
			emitJSON("scaling", map[string]any{
				"workload": "berkstan*",
				"algo":     string(alg),
				"n":        g.NumVertices(),
				"k":        k,
				"workers":  w,
				"seconds":  seconds(t),
				"speedup":  float64(base[alg]) / float64(t),
				"adds":     st.InnerAdds + st.OuterAdds,
			})
		}
		fmt.Printf("%-8d | %12v %7.2fx | %12v %7.2fx | %12v %7.2fx\n", w,
			times[simrank.OIPSR].Round(time.Millisecond), float64(base[simrank.OIPSR])/float64(times[simrank.OIPSR]),
			times[simrank.OIPDSR].Round(time.Millisecond), float64(base[simrank.OIPDSR])/float64(times[simrank.OIPDSR]),
			times[simrank.PsumSR].Round(time.Millisecond), float64(base[simrank.PsumSR])/float64(times[simrank.PsumSR]))
	}
	fmt.Println("(scores and add counts are bit-identical across worker counts; see internal/core)")
}
