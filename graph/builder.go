package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates directed edges and produces an immutable Graph.
//
// Duplicate edges are coalesced. Self-loops are kept by default because the
// SimRank recurrence is well defined for them; call DropSelfLoops to discard
// them at build time. The zero value is ready to use.
type Builder struct {
	n             int
	src, dst      []int
	dropSelfLoops bool
}

// NewBuilder returns a builder pre-sized for a graph with n vertices and
// roughly m edges. Both hints may be zero.
func NewBuilder(n, m int) *Builder {
	return &Builder{
		n:   n,
		src: make([]int, 0, m),
		dst: make([]int, 0, m),
	}
}

// DropSelfLoops configures the builder to silently discard edges u->u.
func (b *Builder) DropSelfLoops() *Builder {
	b.dropSelfLoops = true
	return b
}

// AddEdge records the directed edge u->v. Vertex ids may exceed the initial
// size hint; the final graph spans [0, max id]. Negative ids are rejected at
// Build time.
func (b *Builder) AddEdge(u, v int) {
	if b.dropSelfLoops && u == v {
		return
	}
	if u >= b.n {
		b.n = u + 1
	}
	if v >= b.n {
		b.n = v + 1
	}
	b.src = append(b.src, u)
	b.dst = append(b.dst, v)
}

// EnsureVertices guarantees the built graph has at least n vertices even if
// some of them are isolated.
func (b *Builder) EnsureVertices(n int) {
	if n > b.n {
		b.n = n
	}
}

// Build sorts, deduplicates and freezes the accumulated edges into a Graph.
// The builder may be reused afterwards; the returned graph does not share
// storage with it.
func (b *Builder) Build() (*Graph, error) {
	for i := range b.src {
		if b.src[i] < 0 || b.dst[i] < 0 {
			return nil, fmt.Errorf("graph: negative vertex id in edge (%d, %d)", b.src[i], b.dst[i])
		}
	}
	type edge struct{ u, v int }
	edges := make([]edge, len(b.src))
	for i := range b.src {
		edges[i] = edge{b.src[i], b.dst[i]}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	// Deduplicate in place.
	uniq := edges[:0]
	for i, e := range edges {
		if i == 0 || e != edges[i-1] {
			uniq = append(uniq, e)
		}
	}
	edges = uniq

	g := &Graph{
		n:        b.n,
		m:        len(edges),
		inStart:  make([]int, b.n+1),
		outStart: make([]int, b.n+1),
		inList:   make([]int, len(edges)),
		outList:  make([]int, len(edges)),
	}

	// Out-CSR directly from the (u, v)-sorted order.
	for _, e := range edges {
		g.outStart[e.u+1]++
	}
	for v := 0; v < b.n; v++ {
		g.outStart[v+1] += g.outStart[v]
	}
	for i, e := range edges {
		g.outList[i] = e.v
		_ = i
	}

	// In-CSR by counting sort on the destination.
	for _, e := range edges {
		g.inStart[e.v+1]++
	}
	for v := 0; v < b.n; v++ {
		g.inStart[v+1] += g.inStart[v]
	}
	next := append([]int(nil), g.inStart[:b.n]...)
	for _, e := range edges {
		g.inList[next[e.v]] = e.u
		next[e.v]++
	}
	// Destinations were appended in increasing source order per destination,
	// so each in-list is already sorted; edges are (u,v)-sorted which
	// guarantees sources arrive in increasing order for every v.
	return g, nil
}

// MustBuild is Build for statically-known-good inputs; it panics on error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges is a convenience constructor building a graph with at least n
// vertices from an edge slice of (u, v) pairs.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	b := NewBuilder(n, len(edges))
	b.EnsureVertices(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// MustFromEdges is FromEdges for statically-known-good inputs.
func MustFromEdges(n int, edges [][2]int) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}
