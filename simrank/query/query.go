package query

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"oipsr/graph"
	"oipsr/internal/walkindex"
)

// Options configure BuildIndex. The zero value means C = 0.6, horizon from
// eps = 1e-3, 100 walks per vertex, seed 0, all CPUs.
type Options struct {
	// C is the damping factor in (0,1); 0 means 0.6.
	C float64
	// K is the walk horizon; 0 derives the smallest K with C^(K+1) <= Eps,
	// matching the iterative engines' truncation.
	K int
	// Eps is the truncation target used when K == 0; 0 means 1e-3.
	Eps float64
	// Walks is the number of walk fingerprints R stored per vertex; 0
	// means 100. Estimate error scales as 1/sqrt(R); index size as R.
	Walks int
	// Seed makes the index deterministic and reproducible.
	Seed int64
	// Workers sets the build worker-pool size: 1 means serial, anything
	// below 1 means runtime.GOMAXPROCS(0). The index is bit-identical for
	// every worker count.
	Workers int
}

// Index answers single-source and top-k SimRank queries. It is immutable
// after build/load and safe for concurrent use.
type Index struct {
	wi *walkindex.Index
	// g is the graph the index was built from; needed only for exact
	// reranking. Nil after Load until AttachGraph.
	g *graph.Graph
}

// Ranked is one entry of a top-k result.
type Ranked struct {
	Vertex int     `json:"vertex"`
	Score  float64 `json:"score"`
}

// BuildIndex precomputes the walk index for g. The graph stays attached,
// so TopK reranking works immediately.
func BuildIndex(g *graph.Graph, opt Options) (*Index, error) {
	wi, err := walkindex.Build(g, walkindex.Options{
		C:       opt.C,
		K:       opt.K,
		Eps:     opt.Eps,
		Walks:   opt.Walks,
		Seed:    opt.Seed,
		Workers: opt.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &Index{wi: wi, g: g}, nil
}

// N returns the number of indexed vertices.
func (ix *Index) N() int { return ix.wi.N() }

// C returns the damping factor the index was built with.
func (ix *Index) C() float64 { return ix.wi.C() }

// Horizon returns the walk horizon K.
func (ix *Index) Horizon() int { return ix.wi.Horizon() }

// Walks returns the number of fingerprints R per vertex.
func (ix *Index) Walks() int { return ix.wi.Walks() }

// Seed returns the build seed.
func (ix *Index) Seed() int64 { return ix.wi.Seed() }

// Bytes returns the in-memory size of the walk storage.
func (ix *Index) Bytes() int64 { return ix.wi.Bytes() }

// Graph returns the attached graph, or nil for a loaded index without
// AttachGraph.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// AttachGraph re-attaches the source graph to a loaded index, enabling
// exact reranking. The graph must have the same vertex count the index was
// built from (a different graph silently poisons rerank scores, so at
// least the cheap invariant is enforced).
func (ix *Index) AttachGraph(g *graph.Graph) error {
	if g.NumVertices() != ix.wi.N() {
		return fmt.Errorf("query: graph has %d vertices, index was built on %d", g.NumVertices(), ix.wi.N())
	}
	ix.g = g
	return nil
}

// SingleSource estimates s(q, v) for every vertex v and returns the dense
// score vector; entry q is exactly 1.
func (ix *Index) SingleSource(q int) ([]float64, error) {
	if q < 0 || q >= ix.wi.N() {
		return nil, fmt.Errorf("query: vertex %d out of range [0,%d)", q, ix.wi.N())
	}
	return ix.wi.SingleSource(q, nil), nil
}

// Pair estimates the single score s(a, b).
func (ix *Index) Pair(a, b int) (float64, error) {
	n := ix.wi.N()
	if a < 0 || a >= n || b < 0 || b >= n {
		return 0, fmt.Errorf("query: pair (%d,%d) out of range [0,%d)", a, b, n)
	}
	return ix.wi.Pair(a, b), nil
}

// TopKOptions tune a TopK call. The zero value (or a nil pointer) means:
// rank by index estimates alone, no reranking.
type TopKOptions struct {
	// Rerank re-scores a candidate pool exactly (truncated SimRank via
	// pruned partial-sums iteration) and re-ranks by the exact scores.
	// Requires an attached graph.
	Rerank bool
	// Candidates is the pool size reranking draws from the estimated
	// ranking; 0 means max(4k, k+16). Larger pools raise recall and cost.
	Candidates int
	// PruneEps stops the exact recursion once a branch's accumulated
	// weight — its maximum possible contribution to the root score —
	// falls below it; 0 means 1e-5. Larger values are faster and less
	// exact.
	PruneEps float64
}

// TopK returns the k vertices most similar to q, excluding q itself, in
// decreasing score order with ties broken by vertex id. With opt.Rerank
// the scores are exact truncated SimRank values for the candidate pool;
// otherwise they are the index estimates.
func (ix *Index) TopK(q, k int, opt *TopKOptions) ([]Ranked, error) {
	n := ix.wi.N()
	if q < 0 || q >= n {
		return nil, fmt.Errorf("query: vertex %d out of range [0,%d)", q, n)
	}
	if k < 1 {
		return nil, fmt.Errorf("query: top-k size %d < 1", k)
	}
	if k > n-1 {
		k = n - 1
	}
	if opt == nil {
		opt = &TopKOptions{}
	}
	if opt.Rerank && ix.g == nil {
		return nil, fmt.Errorf("query: rerank needs the source graph (AttachGraph after Load)")
	}

	scores := ix.wi.SingleSource(q, nil)
	pool := k
	if opt.Rerank {
		pool = opt.Candidates
		if pool <= 0 {
			pool = max(4*k, k+16)
		}
		if pool > n-1 {
			pool = n - 1
		}
	}
	cands := topByScore(scores, q, pool)

	if opt.Rerank {
		pruneEps := opt.PruneEps
		if pruneEps == 0 {
			pruneEps = 1e-5
		}
		ex := newExactScorer(ix.g, ix.wi.C(), ix.wi.Horizon(), pruneEps)
		for i := range cands {
			cands[i].Score = ex.pair(q, cands[i].Vertex)
		}
		sort.SliceStable(cands, func(i, j int) bool {
			if cands[i].Score != cands[j].Score {
				return cands[i].Score > cands[j].Score
			}
			return cands[i].Vertex < cands[j].Vertex
		})
	}
	if k > len(cands) {
		k = len(cands)
	}
	return cands[:k], nil
}

// topByScore selects the top-m vertices by score, excluding skip, in
// decreasing score order with ties broken by vertex id. It keeps a small
// sorted tail instead of sorting all n entries: O(n log m).
func topByScore(scores []float64, skip, m int) []Ranked {
	out := make([]Ranked, 0, max(m, 0))
	if m <= 0 {
		return out
	}
	for v, s := range scores {
		if v == skip {
			continue
		}
		if len(out) == m {
			last := out[m-1]
			if s < last.Score || (s == last.Score && v > last.Vertex) {
				continue
			}
			out = out[:m-1]
		}
		// Insert keeping (score desc, id asc) order.
		i := sort.Search(len(out), func(i int) bool {
			return out[i].Score < s || (out[i].Score == s && out[i].Vertex > v)
		})
		out = append(out, Ranked{})
		copy(out[i+1:], out[i:])
		out[i] = Ranked{Vertex: v, Score: s}
	}
	return out
}

// Save writes the index (not the graph) to w in the versioned binary
// walk-index format; see oipsr/internal/walkindex for the layout.
func (ix *Index) Save(w io.Writer) error { return ix.wi.Save(w) }

// Load reads an index written by Save. The result answers SingleSource,
// Pair, and estimate-only TopK immediately; call AttachGraph to enable
// reranking. Load rejects truncated files, corrupted payloads (CRC), and
// format-version mismatches.
func Load(r io.Reader) (*Index, error) {
	wi, err := walkindex.Load(r)
	if err != nil {
		return nil, err
	}
	return &Index{wi: wi}, nil
}

// SaveFile writes the index to path (atomically via a sibling temp file,
// so a crash mid-save never leaves a truncated index behind).
func (ix *Index) SaveFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".walkindex-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := ix.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile reads an index from path.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
