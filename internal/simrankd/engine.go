package simrankd

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"oipsr/graph"
	"oipsr/internal/linsr"
	"oipsr/simrank/query"
)

// The engine seam: /v1/single_source and /v1/topk accept ?engine= to pick
// which of the two query families answers them.
//
//   - walk (the default, and the only value every release before the seam
//     understood): the persistent walk index's estimates, optionally
//     exactly reranked. This path is byte-for-byte the pre-seam behavior.
//   - linearized: row q of the converged SimRank matrix, solved on demand
//     through the linearized-system engine (oipsr/internal/linsr) — exact
//     to query.ExactTol, deterministic, and independent of the index seed.
//
// The engine choice is folded into the response-cache key (distinct "lss"/
// "etopk" key families, so walk and exact bodies can never collide), an
// unknown value is a 400 before any work happens, and a linearized request
// whose remaining deadline cannot afford the exact solve degrades to the
// walk estimates by the same cost-model rules as rerank starvation (see
// degrade.go). /v1/batch and /v1/join are walk-only and reject an explicit
// non-walk engine.

// engineWalk and engineLinearized are the values of the ?engine= query
// parameter.
const (
	engineWalk       = "walk"
	engineLinearized = "linearized"
)

// engineParam resolves ?engine= from the URL query alone (FormValue would
// also consume a POST form body, and /v1/batch bodies must reach the JSON
// decoder untouched). Absent means walk.
func engineParam(r *http.Request) (string, error) {
	switch eng := r.URL.Query().Get("engine"); eng {
	case "", engineWalk:
		return engineWalk, nil
	case engineLinearized:
		return engineLinearized, nil
	default:
		return "", fmt.Errorf("unknown engine %q (want \"walk\" or \"linearized\")", eng)
	}
}

// countEngine records one engine-selecting request for /metrics.
func (sv *serving) countEngine(eng string) {
	if eng == engineLinearized {
		sv.engineLinTotal.Add(1)
	} else {
		sv.engineWalkTotal.Add(1)
	}
}

// writeEngineMetrics emits the simrankd_engine_requests_total lines; both
// the single-node and router /metrics handlers call it.
func (sv *serving) writeEngineMetrics(w http.ResponseWriter) {
	fmt.Fprintf(w, "simrankd_engine_requests_total{engine=\"walk\"} %d\n", sv.engineWalkTotal.Load())
	fmt.Fprintf(w, "simrankd_engine_requests_total{engine=\"linearized\"} %d\n", sv.engineLinTotal.Load())
}

// requireWalkEngine rejects an explicit non-walk ?engine= on the endpoints
// that only serve walk estimates (/v1/batch, /v1/join). Returns false
// after answering the request.
func (sv *serving) requireWalkEngine(w http.ResponseWriter, r *http.Request) bool {
	eng, err := engineParam(r)
	if err != nil {
		sv.writeError(w, http.StatusBadRequest, "%v", err)
		return false
	}
	if eng != engineWalk {
		sv.writeError(w, http.StatusBadRequest, "engine %q is not supported on %s (walk only)", eng, r.URL.Path)
		return false
	}
	return true
}

// lssCacheKey and etopkCacheKey are the linearized-engine versions of
// ssCacheKey and topKCacheKey. etopk has no rerank component: exact scores
// need no rerank, so there is only one response shape per (q, k).
func lssCacheKey(gen uint64, q int, min float64) string {
	return fmt.Sprintf("g%d:lss:%d:%s", gen, q, strconv.FormatFloat(min, 'g', -1, 64))
}

func etopkCacheKey(gen uint64, q, k int) string {
	return fmt.Sprintf("g%d:etopk:%d:%d", gen, q, k)
}

func rtLSSKey(tag string, q int, min float64) string {
	return fmt.Sprintf("g%s:lss:%d:%s", tag, q, strconv.FormatFloat(min, 'g', -1, 64))
}

func rtETopKKey(tag string, q, k int) string {
	return fmt.Sprintf("g%s:etopk:%d:%d", tag, q, k)
}

// serveSingleSourceExact answers /v1/single_source?engine=linearized: row
// q of the converged SimRank matrix via the index's shared linearized
// solver, falling back to the walk estimates (marked degraded, never
// cached) when the remaining deadline cannot afford the exact solve.
// Callers hold mu.RLock.
func (s *Server) serveSingleSourceExact(w http.ResponseWriter, r *http.Request, q int, sparse bool, minVal float64) {
	// The same caching policy as the walk path: dense rows are O(n) bytes
	// and stay out of the LRU, only the thresholded form is memoized.
	cacheable := sparse
	var key string
	if cacheable {
		key = lssCacheKey(s.idx.Generation(), q, minVal)
		if body, ok := s.cache.Get(key); ok {
			writeJSONBytes(w, body)
			return
		}
	}
	buf := s.scorePool.Get().(*[]float64)
	defer s.scorePool.Put(buf)
	if s.shouldDegradeExact(r.Context()) {
		scores, err := s.idx.SingleSourceInto(r.Context(), q, *buf)
		if err != nil {
			s.writeQueryError(w, err, http.StatusBadRequest)
			return
		}
		body, err := s.singleSourceBody(q, scores, sparse, minVal, true)
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
			return
		}
		s.degradedTotal.Add(1)
		w.Header().Set("X-Simrank-Degraded", "true")
		writeJSONBytes(w, body)
		return
	}
	_, prebuilt := s.idx.ExactStats()
	t1 := time.Now()
	scores, err := s.idx.ExactSingleSource(r.Context(), q, *buf)
	if err != nil {
		s.writeQueryError(w, err, http.StatusBadRequest)
		return
	}
	if prebuilt {
		// The first call also pays the one-time diagonal solve; only
		// steady-state queries feed the per-query cost model.
		s.observeExact(time.Since(t1))
	}
	body, err := s.singleSourceBody(q, scores, sparse, minVal, false)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	if cacheable {
		s.cache.Put(key, body)
	}
	writeJSONBytes(w, body)
}

// serveTopKExact answers /v1/topk?engine=linearized: the exact row ranked
// without any rerank step (the scores are already exact), with the same
// degrade-to-walk fallback as the exact single-source path. Callers hold
// mu.RLock.
func (s *Server) serveTopKExact(w http.ResponseWriter, r *http.Request, q, k int) {
	key := etopkCacheKey(s.idx.Generation(), q, k)
	if body, ok := s.cache.Get(key); ok {
		writeJSONBytes(w, body)
		return
	}
	buf := s.scorePool.Get().(*[]float64)
	defer s.scorePool.Put(buf)
	if s.shouldDegradeExact(r.Context()) {
		scores, err := s.idx.SingleSourceInto(r.Context(), q, *buf)
		if err != nil {
			s.writeQueryError(w, err, http.StatusBadRequest)
			return
		}
		results, err := s.idx.TopKFromScores(r.Context(), scores, q, k, &query.TopKOptions{})
		if err != nil {
			s.writeQueryError(w, err, http.StatusBadRequest)
			return
		}
		body, err := s.topKBody(q, k, false, true, results)
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
			return
		}
		s.degradedTotal.Add(1)
		w.Header().Set("X-Simrank-Degraded", "true")
		writeJSONBytes(w, body)
		return
	}
	_, prebuilt := s.idx.ExactStats()
	t1 := time.Now()
	scores, err := s.idx.ExactSingleSource(r.Context(), q, *buf)
	if err != nil {
		s.writeQueryError(w, err, http.StatusBadRequest)
		return
	}
	if prebuilt {
		s.observeExact(time.Since(t1))
	}
	results, err := s.idx.TopKFromScores(r.Context(), scores, q, k, &query.TopKOptions{})
	if err != nil {
		s.writeQueryError(w, err, http.StatusBadRequest)
		return
	}
	body, err := s.topKBody(q, k, false, false, results)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	s.cache.Put(key, body)
	writeJSONBytes(w, body)
}

// routerExact lazily holds the linearized solver behind the router's
// ?engine=linearized queries. The router keeps the full graph for exact
// reranking, so it can solve linearized queries locally — no scatter leg
// involved. The solver is keyed by the graph pointer (every applied edit
// batch replaces rt.g); the mutex serializes concurrent first builds, and
// a built solver is immutable and shared.
type routerExact struct {
	mu      sync.Mutex
	g       *graph.Graph
	solver  *linsr.Solver
	scratch *sync.Pool // of *linsr.Scratch for the cached solver
}

// exactSolver returns the linearized solver for the router's current
// graph, building it when missing or stale. built reports that this call
// performed the diagonal solve (so its latency is kept out of the
// per-query cost model). Callers hold mu.RLock, which keeps rt.g stable.
func (rt *Router) exactSolver(ctx context.Context) (sol *linsr.Solver, scratch *sync.Pool, built bool, err error) {
	g := rt.g
	rt.exact.mu.Lock()
	defer rt.exact.mu.Unlock()
	if rt.exact.solver != nil && rt.exact.g == g {
		return rt.exact.solver, rt.exact.scratch, false, nil
	}
	sol, err = linsr.New(ctx, g, linsr.Options{C: rt.c, Tol: query.ExactTol})
	if err != nil {
		return nil, nil, false, err
	}
	rt.exact.solver = sol
	rt.exact.scratch = &sync.Pool{New: func() any { return sol.NewScratch() }}
	rt.exact.g = g
	return sol, rt.exact.scratch, true, nil
}

// serveSingleSourceExact is the router's /v1/single_source?engine=linearized
// path: a local solve over the router's graph. When the deadline budget
// cannot afford it, the walk estimates are one scatter away — the same
// fallback shape as everywhere else. Callers hold mu.RLock.
func (rt *Router) serveSingleSourceExact(w http.ResponseWriter, r *http.Request, q int, sparse bool, minVal float64) {
	cacheable := sparse
	var key string
	if cacheable {
		key = rtLSSKey(rt.genTagLocked(), q, minVal)
		if body, ok := rt.cache.Get(key); ok {
			writeJSONBytes(w, body)
			return
		}
	}
	if rt.shouldDegradeExact(r.Context()) {
		rows := [][]float64{make([]float64, rt.n)}
		if _, err := rt.scatterScores(r.Context(), []int{q}, rows); err != nil {
			rt.writeQueryError(w, err, http.StatusBadRequest)
			return
		}
		body, err := rt.singleSourceBody(q, rows[0], sparse, minVal, true)
		if err != nil {
			rt.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
			return
		}
		rt.degradedTotal.Add(1)
		w.Header().Set("X-Simrank-Degraded", "true")
		writeJSONBytes(w, body)
		return
	}
	sol, pool, built, err := rt.exactSolver(r.Context())
	if err != nil {
		rt.writeQueryError(w, err, http.StatusBadRequest)
		return
	}
	sc := pool.Get().(*linsr.Scratch)
	defer pool.Put(sc)
	t1 := time.Now()
	row, err := sol.SingleSourceScratch(r.Context(), q, nil, sc)
	if err != nil {
		rt.writeQueryError(w, err, http.StatusBadRequest)
		return
	}
	if !built {
		rt.observeExact(time.Since(t1))
	}
	body, err := rt.singleSourceBody(q, row, sparse, minVal, false)
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	if cacheable {
		rt.cache.Put(key, body)
	}
	writeJSONBytes(w, body)
}

// serveTopKExact is the router's /v1/topk?engine=linearized path: a local
// exact solve ranked through the same RankScores tail as the walk path
// (without the rerank step exact scores make redundant). Callers hold
// mu.RLock.
func (rt *Router) serveTopKExact(w http.ResponseWriter, r *http.Request, q, k int) {
	key := rtETopKKey(rt.genTagLocked(), q, k)
	if body, ok := rt.cache.Get(key); ok {
		writeJSONBytes(w, body)
		return
	}
	kEff := k
	if kEff > rt.n-1 {
		kEff = rt.n - 1
	}
	if rt.shouldDegradeExact(r.Context()) {
		rows := [][]float64{make([]float64, rt.n)}
		if _, err := rt.scatterScores(r.Context(), []int{q}, rows); err != nil {
			rt.writeQueryError(w, err, http.StatusBadRequest)
			return
		}
		results, err := query.RankScores(r.Context(), rt.g, rt.c, rt.horizon, rows[0], q, kEff, &query.TopKOptions{})
		if err != nil {
			rt.writeQueryError(w, err, http.StatusBadRequest)
			return
		}
		body, err := rt.topKBody(q, k, false, true, results)
		if err != nil {
			rt.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
			return
		}
		rt.degradedTotal.Add(1)
		w.Header().Set("X-Simrank-Degraded", "true")
		writeJSONBytes(w, body)
		return
	}
	sol, pool, built, err := rt.exactSolver(r.Context())
	if err != nil {
		rt.writeQueryError(w, err, http.StatusBadRequest)
		return
	}
	sc := pool.Get().(*linsr.Scratch)
	defer pool.Put(sc)
	t1 := time.Now()
	row, err := sol.SingleSourceScratch(r.Context(), q, nil, sc)
	if err != nil {
		rt.writeQueryError(w, err, http.StatusBadRequest)
		return
	}
	if !built {
		rt.observeExact(time.Since(t1))
	}
	results, err := query.RankScores(r.Context(), rt.g, rt.c, rt.horizon, row, q, kEff, &query.TopKOptions{})
	if err != nil {
		rt.writeQueryError(w, err, http.StatusBadRequest)
		return
	}
	body, err := rt.topKBody(q, k, false, false, results)
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	rt.cache.Put(key, body)
	writeJSONBytes(w, body)
}
