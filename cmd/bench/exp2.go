package main

import (
	"fmt"

	"oipsr/simrank"
)

// runExp2Memory reproduces Fig. 6d: the intermediate (auxiliary) memory of
// each algorithm — partial-sum buffers and sharing plan for the OIP family,
// the n x r SVD factors for mtx-SR — alongside the n^2 iteration state that
// every all-pairs engine holds. The paper reports the former; mtx-SR's
// explosion and the modest OIP overhead over psum-SR are the shapes to
// check.
func runExp2Memory(cfg config) {
	header("Exp-2: memory, eps=1e-3 C=0.6", "Fig. 6d")
	names, graphs := dblpSnapshots(cfg)
	names = append(names, "berkstan*", "patent*")
	graphs = append(graphs, webGraph(cfg), patentGraph(cfg))

	fmt.Printf("%-12s %8s | %12s %12s %12s %12s | %14s\n",
		"dataset", "n", "psum-SR", "OIP-SR", "OIP-DSR", "mtx-SR", "OIP/psum aux")
	for i, g := range graphs {
		aux := map[simrank.Algorithm]int64{}
		for _, alg := range []simrank.Algorithm{simrank.PsumSR, simrank.OIPSR, simrank.OIPDSR} {
			// Workers: 1 — aux memory includes per-worker scratch, and the
			// paper's Fig. 6d figures are the serial (machine-independent)
			// ones.
			_, st, err := simrank.Compute(g, simrank.Options{Algorithm: alg, C: 0.6, Eps: 1e-3, Workers: 1})
			must(err)
			aux[alg] = st.AuxBytes
		}
		// mtx-SR only on the DBLP-like snapshots (as in the paper: its SVD
		// destroys sparsity on the larger graphs).
		mtxCell := "      (skip)"
		if i < len(graphs)-2 {
			_, st, err := simrank.Compute(g, simrank.Options{Algorithm: simrank.MtxSR, C: 0.6, Seed: cfg.seed, Workers: 1})
			must(err)
			mtxCell = fmt.Sprintf("%12s", kb(st.AuxBytes))
		}
		fmt.Printf("%-12s %8d | %12s %12s %12s %s | %13.1fx\n",
			names[i], g.NumVertices(),
			kb(aux[simrank.PsumSR]), kb(aux[simrank.OIPSR]), kb(aux[simrank.OIPDSR]), mtxCell,
			float64(aux[simrank.OIPSR])/float64(aux[simrank.PsumSR]))
	}
	fmt.Println("(paper: OIP family ~1.6-1.9x psum-SR aux memory; mtx-SR 1+ order of magnitude more)")
	fmt.Printf("(n^2 iteration state, common to all-pairs engines: %s at the largest n above)\n",
		kb(2*sq(int64(graphs[len(graphs)-1].NumVertices()))*8))
}

func sq(x int64) int64 { return x * x }

func kb(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
