package shard

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"oipsr/graph"
	"oipsr/internal/atomicio"
	"oipsr/internal/walkindex"
	"oipsr/simrank/query"
)

// The shard manifest binds a shard directory together: which files cover
// which vertex ranges, under which build parameters, with which checksums.
// It is the unit of deployment consistency — a shard fleet whose members
// loaded from one manifest is guaranteed to be an exact partition of one
// single-node index, because the manifest pins (n, c, k, walks, seed) and
// the per-file CRCs pin the bytes.
//
// On disk the manifest is two lines: a JSON document, then
// "crc32 <8 hex digits>" over the JSON bytes — the same
// corruption-detection stance as the binary index formats, kept
// line-oriented so operators can still read and diff it. Both the manifest
// and every shard file are published with the fsync-then-rename idiom
// (oipsr/internal/atomicio), so a crashed build never leaves a torn
// directory, only a missing one.

// ManifestVersion is the current manifest format revision.
const ManifestVersion = 1

// ManifestName is the manifest's filename inside a shard directory.
const ManifestName = "manifest.json"

// Sentinel errors returned by LoadManifest / OpenShard.
var (
	ErrManifestCorrupt = errors.New("shard: manifest checksum mismatch (corrupted manifest)")
	ErrManifestVersion = errors.New("shard: unsupported manifest version")
	ErrShardChecksum   = errors.New("shard: shard file does not match its manifest checksum")
)

// FileInfo describes one shard file of a manifest.
type FileInfo struct {
	Range
	File string `json:"file"`
	// CRC32 is 8 hex digits of the CRC-32 (IEEE) over the file EXCLUDING
	// its own 4-byte trailer — i.e. the same value the trailer stores.
	// Hashing the whole file would be useless for binding files to ranges:
	// CRC-32's residue property makes every message-plus-its-own-CRC hash
	// to the constant 0x2144df1c, so all valid shard files would share one
	// "checksum" and a swapped file would sail through.
	CRC32 string `json:"crc32"`
	Bytes int64  `json:"bytes"`
}

// Manifest describes a complete shard directory.
type Manifest struct {
	Version int     `json:"version"`
	N       int     `json:"n"`
	C       float64 `json:"c"`
	K       int     `json:"k"`
	Walks   int     `json:"walks"`
	Seed    int64   `json:"seed"`
	// Format is the on-disk format version of every shard file (see
	// query.FormatV1/FormatV2). Manifests written before the field existed
	// omit it; LoadManifest normalizes 0 to FormatV1, which is what those
	// builds wrote.
	Format int        `json:"format,omitempty"`
	Shards []FileInfo `json:"shards"`
}

// BuildAll plans a `shards`-way partition of g, builds every shard index,
// and publishes them to dir (created if missing) with a sealed manifest.
// Every file lands via write-temp/fsync/rename, the manifest last, so a
// reader that finds a manifest finds every file it names, complete. The
// shard rows are collectively bit-identical to query.BuildIndex(g, opt).
// Files are written in format v2 (compressed, mappable); use
// BuildAllFormat to pin format v1 for fleets with pre-v2 readers.
func BuildAll(g *graph.Graph, opt query.Options, dir string, shards int) (*Manifest, error) {
	return BuildAllFormat(g, opt, dir, shards, query.FormatV2)
}

// BuildAllFormat is BuildAll writing shard files in an explicit on-disk
// format (query.FormatV1 or query.FormatV2), recorded in the manifest.
func BuildAllFormat(g *graph.Graph, opt query.Options, dir string, shards, format int) (*Manifest, error) {
	plan, err := Plan(g.NumVertices(), shards)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manifest{Version: ManifestVersion, N: g.NumVertices(), Format: format}
	for i, r := range plan {
		s, err := Build(g, opt, r.Lo, r.Hi)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			// The resolved parameters (defaults filled, K derived from Eps)
			// come from the built shard, so the manifest records what was
			// actually built, not the possibly-zero request.
			m.C, m.K, m.Walks, m.Seed = s.C(), s.Horizon(), s.Walks(), s.Seed()
		}
		name := fmt.Sprintf("shard-%04d.srwk", i)
		tw := &trailerCRCWriter{crc: crc32.NewIEEE()}
		var size int64
		err = atomicio.WriteFile(filepath.Join(dir, name), func(w io.Writer) error {
			cw := &countingWriter{w: io.MultiWriter(w, tw)}
			if err := s.sx.SaveFormat(cw, format); err != nil {
				return err
			}
			size = cw.n
			return nil
		})
		if err != nil {
			return nil, err
		}
		m.Shards = append(m.Shards, FileInfo{
			Range: r,
			File:  name,
			CRC32: fmt.Sprintf("%08x", tw.crc.Sum32()),
			Bytes: size,
		})
	}
	if err := WriteManifest(dir, m); err != nil {
		return nil, err
	}
	return m, nil
}

// BuildAllStreaming is BuildAll through the out-of-core streaming
// builder: each shard's walks are generated in budget-sized vertex
// slices and encoded straight to its file, so peak builder memory is
// bounded by budgetBytes, not by the widest shard. Files are always
// format v2 and byte-identical to BuildAll's — same manifest, same
// checksums — so readers cannot tell which builder produced a directory.
func BuildAllStreaming(g *graph.Graph, opt query.Options, dir string, shards int, budgetBytes int64) (*Manifest, error) {
	plan, err := Plan(g.NumVertices(), shards)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	wopt := walkindex.Options{
		C:       opt.C,
		K:       opt.K,
		Eps:     opt.Eps,
		Walks:   opt.Walks,
		Seed:    opt.Seed,
		Workers: opt.Workers,
	}
	m := &Manifest{Version: ManifestVersion, N: g.NumVertices(), Format: query.FormatV2}
	for i, r := range plan {
		name := fmt.Sprintf("shard-%04d.srwk", i)
		var st *walkindex.StreamStats
		err := atomicio.WriteFileAt(filepath.Join(dir, name), func(f *os.File) error {
			var err error
			st, err = walkindex.BuildShardStreaming(g, wopt, r.Lo, r.Hi, f, budgetBytes)
			return err
		})
		if err != nil {
			return nil, err
		}
		if i == 0 {
			// The streaming stats carry the resolved parameters (defaults
			// filled, K derived from Eps), same as a built shard would.
			m.C, m.K, m.Walks, m.Seed = st.C, st.K, st.Walks, st.Seed
		}
		// st.CRC32 is the trailer value = CRC over the file minus its own
		// trailer — exactly the manifest's checksum convention.
		m.Shards = append(m.Shards, FileInfo{
			Range: r,
			File:  name,
			CRC32: fmt.Sprintf("%08x", st.CRC32),
			Bytes: st.Bytes,
		})
	}
	if err := WriteManifest(dir, m); err != nil {
		return nil, err
	}
	return m, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// trailerCRCWriter hashes everything written to it EXCEPT the last four
// bytes, by lagging a 4-byte tail behind the hash — the streaming way to
// compute "CRC of the file minus its trailer" without buffering the file.
type trailerCRCWriter struct {
	crc  hash.Hash32
	tail [4]byte
	have int
}

func (tw *trailerCRCWriter) Write(p []byte) (int, error) {
	n := len(p)
	if tw.have+n <= 4 {
		copy(tw.tail[tw.have:], p)
		tw.have += n
		return n, nil
	}
	// Flush all but the final 4 bytes of (tail ++ p) into the hash.
	excess := tw.have + n - 4
	if excess >= tw.have {
		tw.crc.Write(tw.tail[:tw.have])
		tw.crc.Write(p[:excess-tw.have])
		copy(tw.tail[:], p[len(p)-4:])
	} else {
		tw.crc.Write(tw.tail[:excess])
		copy(tw.tail[:], tw.tail[excess:tw.have])
		copy(tw.tail[tw.have-excess:], p)
	}
	tw.have = 4
	return n, nil
}

// WriteManifest seals and atomically publishes m as dir/ManifestName.
func WriteManifest(dir string, m *Manifest) error {
	doc, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return atomicio.WriteFile(filepath.Join(dir, ManifestName), func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s\ncrc32 %08x\n", doc, crc32.ChecksumIEEE(doc))
		return err
	})
}

// LoadManifest reads and verifies dir/ManifestName: the checksum line must
// match the document, the version must be this build's, and the shard
// ranges must form a contiguous partition of [0, n).
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	doc, tail, ok := bytes.Cut(data, []byte{'\n'})
	if !ok {
		return nil, fmt.Errorf("%w: missing checksum line", ErrManifestCorrupt)
	}
	var stored uint32
	if _, err := fmt.Sscanf(string(bytes.TrimSpace(tail)), "crc32 %08x", &stored); err != nil {
		return nil, fmt.Errorf("%w: malformed checksum line", ErrManifestCorrupt)
	}
	if got := crc32.ChecksumIEEE(doc); got != stored {
		return nil, fmt.Errorf("%w: stored %08x, computed %08x", ErrManifestCorrupt, stored, got)
	}
	var m Manifest
	if err := json.Unmarshal(doc, &m); err != nil {
		return nil, fmt.Errorf("shard: parsing manifest: %w", err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("%w: manifest has version %d, this build reads version %d", ErrManifestVersion, m.Version, ManifestVersion)
	}
	if m.N < 0 || m.K < 1 || m.Walks < 1 || !(m.C > 0 && m.C < 1) {
		return nil, fmt.Errorf("shard: invalid manifest parameters (n=%d, k=%d, walks=%d, c=%v)", m.N, m.K, m.Walks, m.C)
	}
	switch m.Format {
	case 0:
		// Pre-format-field manifests described v1 files.
		m.Format = query.FormatV1
	case query.FormatV1, query.FormatV2:
	default:
		return nil, fmt.Errorf("shard: manifest declares shard file format %d, this build reads formats %d and %d",
			m.Format, query.FormatV1, query.FormatV2)
	}
	next := 0
	for i, fi := range m.Shards {
		if fi.Lo != next || fi.Hi < fi.Lo {
			return nil, fmt.Errorf("shard: manifest shard %d range [%d,%d) breaks the partition at %d", i, fi.Lo, fi.Hi, next)
		}
		if fi.File == "" || fi.File != filepath.Base(fi.File) {
			return nil, fmt.Errorf("shard: manifest shard %d has invalid file name %q", i, fi.File)
		}
		next = fi.Hi
	}
	if next != m.N {
		return nil, fmt.Errorf("shard: manifest shards cover [0,%d) of [0,%d)", next, m.N)
	}
	return &m, nil
}

// OpenShard loads shard i of a manifest from dir, verifying the file
// against the manifest's checksum and the loaded parameters against the
// manifest's before trusting it. The returned shard has no graph attached;
// call AttachGraph before serving.
func OpenShard(dir string, m *Manifest, i int) (*Shard, error) {
	if i < 0 || i >= len(m.Shards) {
		return nil, fmt.Errorf("shard: shard ordinal %d outside [0,%d)", i, len(m.Shards))
	}
	fi := m.Shards[i]
	// Whole-file read: the CRC must cover exactly the file's bytes, and the
	// shard is about to occupy memory of the same order anyway.
	data, err := os.ReadFile(filepath.Join(dir, fi.File))
	if err != nil {
		return nil, err
	}
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: %s is %d bytes", ErrShardChecksum, fi.File, len(data))
	}
	if got := fmt.Sprintf("%08x", crc32.ChecksumIEEE(data[:len(data)-4])); got != fi.CRC32 {
		return nil, fmt.Errorf("%w: %s has crc %s, manifest says %s", ErrShardChecksum, fi.File, got, fi.CRC32)
	}
	sx, err := walkindex.LoadShard(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	if err := checkShardManifest(sx, m, fi); err != nil {
		return nil, err
	}
	return &Shard{sx: sx}, nil
}

// OpenShardMapped is OpenShard paging the shard file on demand instead of
// decoding it into memory (see query.LoadFileMapped). The manifest must
// describe format-v2 files. The manifest checksum is verified with a
// streaming read, so the open never materializes the dense payload.
func OpenShardMapped(dir string, m *Manifest, i int, opts query.MappedOptions) (*Shard, error) {
	if i < 0 || i >= len(m.Shards) {
		return nil, fmt.Errorf("shard: shard ordinal %d outside [0,%d)", i, len(m.Shards))
	}
	if m.Format != query.FormatV2 {
		return nil, fmt.Errorf("shard: manifest describes format v%d shard files; only format v2 can be mapped — rebuild with BuildAll", m.Format)
	}
	fi := m.Shards[i]
	path := filepath.Join(dir, fi.File)
	if err := verifyFileCRC(path, fi); err != nil {
		return nil, err
	}
	sx, err := walkindex.LoadShardMapped(path, opts)
	if err != nil {
		return nil, err
	}
	if err := checkShardManifest(sx, m, fi); err != nil {
		sx.Close()
		return nil, err
	}
	return &Shard{sx: sx}, nil
}

// verifyFileCRC streams the file through the manifest's trailer-excluded
// CRC check without holding more than one buffer of it.
func verifyFileCRC(path string, fi FileInfo) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() < 4 {
		return fmt.Errorf("%w: %s is %d bytes", ErrShardChecksum, fi.File, st.Size())
	}
	crc := crc32.NewIEEE()
	if _, err := io.Copy(crc, io.LimitReader(f, st.Size()-4)); err != nil {
		return err
	}
	if got := fmt.Sprintf("%08x", crc.Sum32()); got != fi.CRC32 {
		return fmt.Errorf("%w: %s has crc %s, manifest says %s", ErrShardChecksum, fi.File, got, fi.CRC32)
	}
	return nil
}

// checkShardManifest validates a loaded shard's parameters against its
// manifest entry before trusting it.
func checkShardManifest(sx *walkindex.ShardIndex, m *Manifest, fi FileInfo) error {
	if sx.N() != m.N || sx.Lo() != fi.Lo || sx.Hi() != fi.Hi ||
		sx.C() != m.C || sx.Horizon() != m.K || sx.Walks() != m.Walks || sx.Seed() != m.Seed {
		return fmt.Errorf("shard: %s does not match its manifest entry (n=%d [%d,%d) c=%v k=%d r=%d seed=%d)",
			fi.File, sx.N(), sx.Lo(), sx.Hi(), sx.C(), sx.Horizon(), sx.Walks(), sx.Seed())
	}
	return nil
}
