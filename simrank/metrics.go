package simrank

import "oipsr/internal/eval"

// NDCG computes the normalized discounted cumulative gain at position p
// for a ranking (item order) against per-item graded relevance, using the
// formula of the paper's Section V-A.
func NDCG(rel []float64, ranking []int, p int) float64 {
	return eval.NDCG(rel, ranking, p)
}

// GradeByRank derives graded relevance from an ideal ranking: items before
// cutoffs[0] get the highest grade, items before cutoffs[1] the next, and
// so on (items beyond the last cutoff get 0).
func GradeByRank(n int, ideal []int, cutoffs []int) []float64 {
	return eval.GradeByRank(n, ideal, cutoffs)
}

// KendallTau computes the Kendall rank correlation of two score vectors.
func KendallTau(a, b []float64) float64 { return eval.KendallTau(a, b) }

// SpearmanRho computes the Spearman rank correlation of two score vectors.
func SpearmanRho(a, b []float64) float64 { return eval.SpearmanRho(a, b) }

// Inversions counts pairs ordered differently by two rankings (restricted
// to common items) — the metric behind the paper's Fig. 6h comparison.
func Inversions(a, b []int) int { return eval.Inversions(a, b) }

// SignificantInversions counts item pairs the two score vectors order in
// strictly opposite ways with both gaps above tol; pairs either model
// scores within tol are ranking ties and excluded.
func SignificantInversions(items []int, a, b []float64, tol float64) int {
	return eval.SignificantInversions(items, a, b, tol)
}

// TopKOverlap returns the fraction of items shared by two top-k lists.
func TopKOverlap(a, b []int) float64 { return eval.TopKOverlap(a, b) }
