package main

import (
	"fmt"
	"time"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/simrank"
)

// runDatasets prints the Fig. 5-style dataset table for the substitutes.
func runDatasets(cfg config) {
	header("Dataset substitutes", "Fig. 5")
	fmt.Printf("%-12s %10s %10s %8s %8s %9s\n", "dataset", "vertices", "edges", "avg deg", "max in", "overlap")
	row := func(name string, g *graph.Graph) {
		s := graph.ComputeStats(g)
		fmt.Printf("%-12s %10d %10d %8.1f %8d %9.2f\n",
			name, s.Vertices, s.Edges, s.AvgDegree, s.MaxInDeg, s.OverlapRatio)
	}
	row("berkstan*", webGraph(cfg))
	row("patent*", patentGraph(cfg))
	names, graphs := dblpSnapshots(cfg)
	for i, g := range graphs {
		row("dblp-"+names[i], g)
	}
	fmt.Println("(*: shape-preserving synthetic substitute, see DESIGN.md)")
}

// timeAlgo runs one algorithm and returns elapsed wall time and stats. The
// -workers flag applies unless the caller set an explicit pool size.
func timeAlgo(g *graph.Graph, opt simrank.Options) (time.Duration, *simrank.Stats, error) {
	if opt.Workers == 0 {
		opt.Workers = benchWorkers
	}
	start := time.Now()
	_, st, err := simrank.Compute(g, opt)
	return time.Since(start), st, err
}

// runExp1DBLP reproduces Fig. 6a (left): CPU time of the four algorithms on
// the growing DBLP snapshots at eps = 1e-3, C = 0.6.
func runExp1DBLP(cfg config) {
	header("Exp-1: time on DBLP snapshots, eps=1e-3 C=0.6", "Fig. 6a left")
	names, graphs := dblpSnapshots(cfg)
	fmt.Printf("%-8s %8s %8s | %12s %12s %12s %12s | %10s %10s\n",
		"snap", "n", "d", "OIP-DSR", "OIP-SR", "psum-SR", "mtx-SR", "SR/psum", "DSR/psum")
	for i, g := range graphs {
		tDSR, _, err := timeAlgo(g, simrank.Options{Algorithm: simrank.OIPDSR, C: 0.6, Eps: 1e-3})
		must(err)
		tSR, _, err := timeAlgo(g, simrank.Options{Algorithm: simrank.OIPSR, C: 0.6, Eps: 1e-3})
		must(err)
		tPsum, _, err := timeAlgo(g, simrank.Options{Algorithm: simrank.PsumSR, C: 0.6, Eps: 1e-3})
		must(err)
		tMtx, _, err := timeAlgo(g, simrank.Options{Algorithm: simrank.MtxSR, C: 0.6, Seed: cfg.seed})
		must(err)
		fmt.Printf("%-8s %8d %8.1f | %12v %12v %12v %12v | %9.2fx %9.2fx\n",
			names[i], g.NumVertices(), g.AvgInDegree(),
			tDSR.Round(time.Millisecond), tSR.Round(time.Millisecond),
			tPsum.Round(time.Millisecond), tMtx.Round(time.Millisecond),
			float64(tPsum)/float64(tSR), float64(tPsum)/float64(tDSR))
		for _, r := range []struct {
			alg string
			t   time.Duration
		}{{"oip-dsr", tDSR}, {"oip-sr", tSR}, {"psum-sr", tPsum}, {"mtx-sr", tMtx}} {
			emitJSON("exp1-dblp", map[string]any{
				"workload": "dblp-" + names[i], "algo": r.alg,
				"n": g.NumVertices(), "seconds": seconds(r.t),
			})
		}
	}
	fmt.Println("(paper: OIP-SR 1.8x over psum-SR on DBLP; OIP-DSR up to 5.2x)")
}

// runExp1Web reproduces Fig. 6a (middle): time vs iteration count K on the
// BerkStan-like workload.
func runExp1Web(cfg config) {
	header("Exp-1: time vs K on berkstan*", "Fig. 6a middle")
	exp1VaryK("berkstan*", webGraph(cfg), []int{5, 10, 15, 20, 25})
	fmt.Println("(paper: OIP-SR 4.6x average speedup over psum-SR on BERKSTAN)")
}

// runExp1Patent reproduces Fig. 6a (right): time vs K on the Patent-like
// workload.
func runExp1Patent(cfg config) {
	header("Exp-1: time vs K on patent*", "Fig. 6a right")
	exp1VaryK("patent*", patentGraph(cfg), []int{5, 10, 15, 20})
	fmt.Println("(paper: OIP-SR 2.7x average speedup over psum-SR on PATENT)")
}

func exp1VaryK(workload string, g *graph.Graph, ks []int) {
	fmt.Printf("workload: n=%d m=%d d=%.1f\n", g.NumVertices(), g.NumEdges(), g.AvgInDegree())
	fmt.Printf("%-6s | %12s %12s %12s | %10s\n", "K", "OIP-DSR", "OIP-SR", "psum-SR", "SR/psum")
	for _, k := range ks {
		// OIP-DSR's K' for comparable accuracy: the paper plots all
		// algorithms at the same K; DSR reaches far better accuracy there,
		// so we run DSR at the iteration count matching the geometric
		// engines' accuracy C^(K+1).
		epsAtK := simrank.GeometricErrorBound(0.6, k)
		tDSR, stDSR, err := timeAlgo(g, simrank.Options{Algorithm: simrank.OIPDSR, C: 0.6, Eps: epsAtK})
		must(err)
		tSR, _, err := timeAlgo(g, simrank.Options{Algorithm: simrank.OIPSR, C: 0.6, K: k})
		must(err)
		tPsum, _, err := timeAlgo(g, simrank.Options{Algorithm: simrank.PsumSR, C: 0.6, K: k})
		must(err)
		fmt.Printf("%-6d | %10v(%d) %12v %12v | %9.2fx\n",
			k, tDSR.Round(time.Millisecond), stDSR.Iterations,
			tSR.Round(time.Millisecond), tPsum.Round(time.Millisecond),
			float64(tPsum)/float64(tSR))
		for _, r := range []struct {
			alg string
			t   time.Duration
		}{{"oip-dsr", tDSR}, {"oip-sr", tSR}, {"psum-sr", tPsum}} {
			emitJSON("exp1-vary-k", map[string]any{
				"workload": workload, "algo": r.alg, "k": k,
				"n": g.NumVertices(), "seconds": seconds(r.t),
			})
		}
	}
}

// runExp1Amortized reproduces Fig. 6b: the fraction of total time each
// phase (Build MST vs Share Sums) takes for OIP-SR and OIP-DSR.
func runExp1Amortized(cfg config) {
	header("Exp-1: amortized phase time, eps=1e-3 C=0.6", "Fig. 6b")
	for _, w := range []struct {
		name string
		g    *graph.Graph
	}{
		{"berkstan*", webGraph(cfg)},
		{"patent*", patentGraph(cfg)},
	} {
		fmt.Printf("%s (n=%d m=%d)\n", w.name, w.g.NumVertices(), w.g.NumEdges())
		for _, alg := range []simrank.Algorithm{simrank.OIPSR, simrank.OIPDSR} {
			_, st, err := simrank.Compute(w.g, simrank.Options{Algorithm: alg, C: 0.6, Eps: 1e-3, Workers: benchWorkers})
			must(err)
			total := st.PlanTime + st.ComputeTime
			fmt.Printf("  %-8s build-MST %10v (%4.1f%%)   share-sums %10v (%4.1f%%)   iters %d\n",
				alg, st.PlanTime.Round(time.Millisecond),
				100*float64(st.PlanTime)/float64(total),
				st.ComputeTime.Round(time.Millisecond),
				100*float64(st.ComputeTime)/float64(total),
				st.Iterations)
		}
	}
	fmt.Println("(paper: MST phase is a larger share of OIP-DSR's total because DSR iterates fewer times)")
}

// runExp1Density reproduces Fig. 6c: CPU time and share ratio versus
// average degree on the synthetic density sweep.
func runExp1Density(cfg config) {
	header("Exp-1: effect of density, eps=1e-3 C=0.6", "Fig. 6c")
	n := densityN / cfg.scale
	fmt.Printf("workload: web-like n=%d, avg degree swept\n", n)
	fmt.Printf("%-6s %8s | %12s %12s %12s | %8s %10s %10s\n",
		"d", "m", "OIP-DSR", "OIP-SR", "psum-SR", "share", "SR/psum", "DSR/psum")
	for _, d := range []int{10, 20, 30, 40, 50} {
		g := gen.WebGraph(n, d, cfg.seed)
		tDSR, _, err := timeAlgo(g, simrank.Options{Algorithm: simrank.OIPDSR, C: 0.6, Eps: 1e-3})
		must(err)
		tSR, stSR, err := timeAlgo(g, simrank.Options{Algorithm: simrank.OIPSR, C: 0.6, Eps: 1e-3})
		must(err)
		tPsum, _, err := timeAlgo(g, simrank.Options{Algorithm: simrank.PsumSR, C: 0.6, Eps: 1e-3})
		must(err)
		fmt.Printf("%-6.1f %8d | %12v %12v %12v | %8.2f %9.2fx %9.2fx\n",
			g.AvgInDegree(), g.NumEdges(),
			tDSR.Round(time.Millisecond), tSR.Round(time.Millisecond), tPsum.Round(time.Millisecond),
			stSR.ShareRatio, float64(tPsum)/float64(tSR), float64(tPsum)/float64(tDSR))
		for _, r := range []struct {
			alg string
			t   time.Duration
		}{{"oip-dsr", tDSR}, {"oip-sr", tSR}, {"psum-sr", tPsum}} {
			emitJSON("exp1-density", map[string]any{
				"workload": "web-density", "algo": r.alg, "d": d,
				"n": n, "seconds": seconds(r.t), "share": stSR.ShareRatio,
			})
		}
	}
	fmt.Println("(paper: share ratio 0.68..0.83 rising with d; biggest speedups at d=50)")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
