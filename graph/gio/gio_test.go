package gio

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"oipsr/graph"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# a comment
% another comment style

0 1
1 2
2 0
0 1
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		t.Errorf("n = %d, want 3", g.NumVertices())
	}
	if g.NumEdges() != 3 { // duplicate 0 1 coalesced
		t.Errorf("m = %d, want 3", g.NumEdges())
	}
	if !g.HasEdge(2, 0) {
		t.Error("missing edge 2->0")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",         // too few fields
		"x 1\n",       // bad src
		"1 y\n",       // bad dst
		"-1 2\n",      // negative
		"3 -4\n",      // negative dst
		"1 2 extra\n", // trailing fields are tolerated (SNAP weights)
	}
	for i, in := range cases {
		_, err := ReadEdgeList(strings.NewReader(in))
		if i == len(cases)-1 {
			// Trailing-field lines are accepted (SNAP files carry weights).
			if err != nil {
				t.Errorf("case %d: unexpected error %v", i, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("case %d (%q): want error, got nil", i, in)
		}
	}
}

func TestReadEdgeListNForcesVertexCount(t *testing.T) {
	g, err := ReadEdgeListN(strings.NewReader("0 1\n"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 {
		t.Errorf("n = %d, want 10", g.NumVertices())
	}
}

func sameGraph(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		av, bv := a.In(v), b.In(v)
		if len(av) != len(bv) {
			return false
		}
		if len(av) > 0 && !reflect.DeepEqual(av, bv) {
			return false
		}
	}
	return true
}

func TestEdgeListRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		b := graph.NewBuilder(n, 0)
		b.EnsureVertices(n)
		for i := 0; i < rng.Intn(3*n); i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.MustBuild()

		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Log(err)
			return false
		}
		g2, err := ReadEdgeListN(&buf, n)
		if err != nil {
			t.Log(err)
			return false
		}
		return sameGraph(g, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		b := graph.NewBuilder(n, 0)
		b.EnsureVertices(n)
		for i := 0; i < rng.Intn(3*n); i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.MustBuild()

		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Log(err)
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Log(err)
			return false
		}
		return sameGraph(g, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReadBinaryGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("want error decoding garbage, got nil")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	g := graph.MustFromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err := SaveEdgeListFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeListFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, g2) {
		t.Error("file round trip changed the graph")
	}
}

func TestLoadEdgeListFileMissing(t *testing.T) {
	if _, err := LoadEdgeListFile(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Fatal("want error for missing file")
	}
}
