package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	"oipsr/graph/gen"
	"oipsr/simrank/query"
)

// runStreamingBuild is the out-of-core leg of the index workload: build
// and serve a graph whose DENSE walk payload does not fit the builder's
// memory budget. The streaming builder generates walks in budget-sized
// vertex slices and encodes them straight to disk, so peak builder heap
// must stay bounded by the budget — gated here against a live heap
// sampler — while the dense layout (n·R·K·4 bytes) is several times the
// budget by construction. The sealed file then serves demand-paged:
// cold latency is measured with the page cache dropped, warm once the
// block LRU and prefetch pool are going.
//
// At full scale this is n=1,000,000 and a 256 MiB budget (dense ≈ 5.2 GB);
// -scale/-quick shrink both together so the ratio gates keep holding.
func runStreamingBuild(cfg config, dir string) {
	n := 1_000_000 / cfg.scale
	if n < 250_000 {
		n = 250_000
	}
	budget := int64(256<<20) / int64(cfg.scale)
	if budget < 64<<20 {
		budget = 64 << 20
	}
	fmt.Printf("\nout-of-core streaming build: n=%d, walk-state budget %d MiB\n", n, budget>>20)

	g := gen.WebGraph(n, 8, cfg.seed)

	// Heap baseline after graph generation: the gate is on what the BUILD
	// adds, not on the graph the caller already holds.
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	sampler := startHeapSampler()
	path := filepath.Join(dir, "stream-large.idx")
	t0 := time.Now()
	st, err := query.BuildFileStreaming(g, query.Options{Walks: 100, Seed: cfg.seed, Workers: benchWorkers}, path, budget)
	must(err)
	buildDur := time.Since(t0)
	peak := sampler.stop()
	peakDelta := int64(peak) - int64(base.HeapInuse)
	denseBytes := int64(st.Rows) * int64(st.Walks) * int64(st.K) * 4

	// Gate 1: the workload is genuinely out-of-core — the dense payload is
	// several times the budget, so a materializing builder could not have
	// respected it.
	if denseBytes <= 4*budget {
		fmt.Fprintf(os.Stderr, "bench: index: streaming workload too small: dense payload %d bytes <= 4x budget %d\n", denseBytes, budget)
		os.Exit(1)
	}
	// Gate 2: the streaming builder held its bound. The slack factor covers
	// encode buffers, the carried prev-row, and GC lag between sampler
	// ticks — all small next to the slice buffer, which is what the budget
	// sizes.
	if peakDelta >= 2*budget {
		fmt.Fprintf(os.Stderr, "bench: index: streaming build peak heap delta %d bytes >= 2x budget %d\n", peakDelta, budget)
		os.Exit(1)
	}

	// Serve the sealed file. Cold = first query after the page cache is
	// dropped; warm = steady state with the decoded-block LRU and the
	// prefetch pool active.
	must(dropPageCache(path))
	q := n / 2
	t0 = time.Now()
	ix, err := query.LoadFileMapped(path, query.MappedOptions{})
	must(err)
	_, err = ix.SingleSource(context.Background(), q)
	must(err)
	coldLat := time.Since(t0)
	warmLat := timeSingleSource(ix, q, 5)
	must(ix.Close())

	fmt.Printf("built %d vertices in %v: %d slices of %d vertices, %d bytes (%.1f B/vertex, dense %d)\n",
		st.Rows, buildDur.Round(time.Millisecond), st.Slices, st.SliceVertices, st.Bytes, float64(st.Bytes)/float64(n), denseBytes)
	fmt.Printf("peak builder heap delta %d MiB (budget %d MiB); mapped serve: cold %v, warm %v\n",
		peakDelta>>20, budget>>20, coldLat.Round(time.Microsecond), warmLat.Round(time.Microsecond))
	emitJSON("index", map[string]any{
		"workload": "stream-large", "n": n, "walks": st.Walks, "horizon": st.K,
		"budget_bytes": budget, "dense_bytes": denseBytes, "file_bytes": st.Bytes,
		"bytes_per_vertex_v2": float64(st.Bytes) / float64(n),
		"build_seconds":       seconds(buildDur),
		"peak_heap_delta":     peakDelta,
		"slices":              st.Slices, "slice_vertices": st.SliceVertices,
		"cold_us_mapped": coldLat.Microseconds(), "warm_us_mapped": warmLat.Microseconds(),
		"equivalence": "builder RSS bounded by budget; dense layout 4x+ over budget",
	})
}

// heapSampler polls runtime.ReadMemStats from a goroutine and keeps the
// peak HeapInuse it saw. Polling catches the transient the gate cares
// about — the slice buffer at its largest — which a single post-build
// reading would miss once the buffer is collected.
type heapSampler struct {
	peak  atomic.Uint64
	stop0 chan struct{}
	done  chan struct{}
}

func startHeapSampler() *heapSampler {
	s := &heapSampler{stop0: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapInuse > s.peak.Load() {
				s.peak.Store(ms.HeapInuse)
			}
			select {
			case <-s.stop0:
				return
			case <-tick.C:
			}
		}
	}()
	return s
}

// stop ends sampling and returns the peak HeapInuse observed.
func (s *heapSampler) stop() uint64 {
	close(s.stop0)
	<-s.done
	return s.peak.Load()
}
