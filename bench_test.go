// Package-level benchmarks: one testing.B benchmark per table/figure of the
// paper's evaluation plus the design-choice ablations of DESIGN.md. The
// cmd/bench harness prints the same data as formatted tables; these benches
// integrate with `go test -bench` for regression tracking.
//
// Workload sizes are kept small enough for -bench=. to finish in minutes on
// a laptop; the shapes (who wins, how ratios move with density/accuracy)
// are what matters, per EXPERIMENTS.md.
package main

import (
	"fmt"
	"testing"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/simrank"
)

// benchGraphs caches generated workloads across benchmarks.
var benchGraphs = map[string]*graph.Graph{}

func workload(name string, make func() *graph.Graph) *graph.Graph {
	if g, ok := benchGraphs[name]; ok {
		return g
	}
	g := make()
	benchGraphs[name] = g
	return g
}

func web() *graph.Graph {
	return workload("web", func() *graph.Graph { return gen.WebGraph(1000, 11, 1) })
}
func patent() *graph.Graph {
	return workload("patent", func() *graph.Graph { return gen.CitationGraph(1300, 4, 1) })
}
func dblp(i int) *graph.Graph {
	return workload(fmt.Sprintf("dblp%d", i), func() *graph.Graph { return gen.DBLPSnapshot(i, 8, 1) })
}

func runAlgo(b *testing.B, g *graph.Graph, opt simrank.Options) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, st, err := simrank.Compute(g, opt)
		if err != nil {
			b.Fatal(err)
		}
		s.Close() // tiled-backend results hold tiles + spill files
		if i == 0 {
			b.ReportMetric(float64(st.Iterations), "iters")
			if st.InnerAdds > 0 {
				b.ReportMetric(float64(st.InnerAdds+st.OuterAdds), "adds")
			}
			if st.ShareRatio > 0 {
				b.ReportMetric(st.ShareRatio, "share")
			}
		}
	}
}

// --- Fig. 5: dataset statistics (cost of workload generation + stats) ---

func BenchmarkDatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := gen.WebGraph(1000, 11, int64(i))
		s := graph.ComputeStats(g)
		if s.Vertices != 1000 {
			b.Fatal("bad workload")
		}
	}
}

// --- Fig. 6a left: the four algorithms on DBLP snapshots ---

func BenchmarkExp1DBLP(b *testing.B) {
	for i := 0; i < 4; i++ {
		g := dblp(i)
		b.Run(fmt.Sprintf("snap=d%02d/algo=oip-dsr", 2+3*i), func(b *testing.B) {
			runAlgo(b, g, simrank.Options{Algorithm: simrank.OIPDSR, C: 0.6, Eps: 1e-3})
		})
		b.Run(fmt.Sprintf("snap=d%02d/algo=oip-sr", 2+3*i), func(b *testing.B) {
			runAlgo(b, g, simrank.Options{Algorithm: simrank.OIPSR, C: 0.6, Eps: 1e-3})
		})
		b.Run(fmt.Sprintf("snap=d%02d/algo=psum-sr", 2+3*i), func(b *testing.B) {
			runAlgo(b, g, simrank.Options{Algorithm: simrank.PsumSR, C: 0.6, Eps: 1e-3})
		})
		b.Run(fmt.Sprintf("snap=d%02d/algo=mtx-sr", 2+3*i), func(b *testing.B) {
			runAlgo(b, g, simrank.Options{Algorithm: simrank.MtxSR, C: 0.6, Seed: 1})
		})
	}
}

// --- Fig. 6a middle/right: time vs K on the web / citation workloads ---

func BenchmarkExp1Web(b *testing.B) {
	for _, k := range []int{5, 15, 25} {
		for _, alg := range []simrank.Algorithm{simrank.OIPSR, simrank.PsumSR} {
			b.Run(fmt.Sprintf("K=%d/algo=%s", k, alg), func(b *testing.B) {
				runAlgo(b, web(), simrank.Options{Algorithm: alg, C: 0.6, K: k})
			})
		}
	}
}

func BenchmarkExp1Patent(b *testing.B) {
	for _, k := range []int{5, 10, 20} {
		for _, alg := range []simrank.Algorithm{simrank.OIPSR, simrank.PsumSR} {
			b.Run(fmt.Sprintf("K=%d/algo=%s", k, alg), func(b *testing.B) {
				runAlgo(b, patent(), simrank.Options{Algorithm: alg, C: 0.6, K: k})
			})
		}
	}
}

// --- Fig. 6b: the two phases of OIP (MST build vs iteration sweeps) ---

func BenchmarkExp1PhasePlan(b *testing.B) {
	g := web()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// K=0 is not allowed, so measure a single-iteration run, which is
		// dominated by planning on this workload; the harness prints exact
		// phase splits.
		if _, st, err := simrank.Compute(g, simrank.Options{C: 0.6, K: 1}); err != nil {
			b.Fatal(err)
		} else if st.PlanTime <= 0 {
			b.Fatal("no plan time recorded")
		}
	}
}

// --- Fig. 6c: density sweep ---

func BenchmarkExp1Density(b *testing.B) {
	for _, d := range []int{10, 30, 50} {
		g := workload(fmt.Sprintf("density%d", d), func() *graph.Graph {
			return gen.WebGraph(700, d, 7)
		})
		for _, alg := range []simrank.Algorithm{simrank.OIPDSR, simrank.OIPSR, simrank.PsumSR} {
			b.Run(fmt.Sprintf("d=%d/algo=%s", d, alg), func(b *testing.B) {
				runAlgo(b, g, simrank.Options{Algorithm: alg, C: 0.6, Eps: 1e-3})
			})
		}
	}
}

// --- Fig. 6d: memory (reported as metrics on a single run) ---

func BenchmarkExp2Memory(b *testing.B) {
	g := dblp(3)
	for _, alg := range []simrank.Algorithm{simrank.PsumSR, simrank.OIPSR, simrank.OIPDSR, simrank.MtxSR} {
		b.Run("algo="+string(alg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, st, err := simrank.Compute(g, simrank.Options{Algorithm: alg, C: 0.6, Eps: 1e-3, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(st.AuxBytes), "aux-B")
					b.ReportMetric(float64(st.StateBytes), "state-B")
				}
			}
		})
	}
}

// --- Fig. 6e/6f: convergence (iterations to accuracy) ---

func BenchmarkExp3Convergence(b *testing.B) {
	g := workload("conv", func() *graph.Graph { return gen.CoauthorGraph(600, 3, 1) })
	for _, eps := range []float64{1e-2, 1e-4, 1e-6} {
		b.Run(fmt.Sprintf("eps=%.0e/algo=oip-sr", eps), func(b *testing.B) {
			runAlgo(b, g, simrank.Options{Algorithm: simrank.OIPSR, C: 0.8, K: 200, StopDiff: eps})
		})
		b.Run(fmt.Sprintf("eps=%.0e/algo=oip-dsr", eps), func(b *testing.B) {
			runAlgo(b, g, simrank.Options{Algorithm: simrank.OIPDSR, C: 0.8, Eps: eps})
		})
	}
}

// --- Fig. 6g/6h: ordering quality (NDCG as a reported metric) ---

func BenchmarkExp4NDCG(b *testing.B) {
	g := workload("conv", func() *graph.Graph { return gen.CoauthorGraph(600, 3, 1) })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sr, _, err := simrank.Compute(g, simrank.Options{Algorithm: simrank.OIPSR, C: 0.8, Eps: 1e-5})
		if err != nil {
			b.Fatal(err)
		}
		ds, _, err := simrank.Compute(g, simrank.Options{Algorithm: simrank.OIPDSR, C: 0.8, Eps: 1e-5})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			q := 0
			for v := 0; v < g.NumVertices(); v++ {
				if g.InDegree(v) > g.InDegree(q) {
					q = v
				}
			}
			ideal := make([]int, 0, g.NumVertices()-1)
			for _, r := range sr.TopK(q, g.NumVertices()) {
				ideal = append(ideal, r.Vertex)
			}
			rel := simrank.GradeByRank(g.NumVertices(), ideal, []int{10, 30, 50})
			dsRank := make([]int, 0, g.NumVertices()-1)
			for _, r := range ds.TopK(q, g.NumVertices()) {
				dsRank = append(dsRank, r.Vertex)
			}
			b.ReportMetric(simrank.NDCG(rel, dsRank, 30), "ndcg30")
		}
	}
}

// --- Parallel sweep engine: speedup vs worker count ---

// BenchmarkSweepParallel exercises the chain-level worker pool on a
// power-law web graph (n = 2000). K is high enough that the one-off
// DMST-Reduce planning phase is amortized and the sweeps dominate; scores
// and add counts are bit-identical across the worker counts, so the bench
// measures pure scheduling/scaling behavior.
func BenchmarkSweepParallel(b *testing.B) {
	g := workload("scaling", func() *graph.Graph { return gen.WebGraph(2000, 11, 1) })
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			runAlgo(b, g, simrank.Options{Algorithm: simrank.OIPSR, C: 0.6, K: 15, Workers: w})
		})
	}
}

// BenchmarkSweepTiled tracks the tiled backend's overhead against the
// dense engine on the same workload: unbounded (storage layout cost only)
// and under a memory cap at half the dense state (adds eviction and
// spill-to-disk traffic). Scores are bit-identical in every configuration,
// so the delta is pure storage-path cost.
func BenchmarkSweepTiled(b *testing.B) {
	g := workload("tiled", func() *graph.Graph { return gen.WebGraph(1000, 11, 1) })
	denseState := 2 * int64(g.NumVertices()) * int64(g.NumVertices()) * 8
	b.Run("dense", func(b *testing.B) {
		runAlgo(b, g, simrank.Options{Algorithm: simrank.OIPSR, C: 0.6, K: 8})
	})
	b.Run("tiled-unbounded", func(b *testing.B) {
		runAlgo(b, g, simrank.Options{Algorithm: simrank.OIPSR, C: 0.6, K: 8, BlockSize: 128})
	})
	b.Run("tiled-capped", func(b *testing.B) {
		runAlgo(b, g, simrank.Options{Algorithm: simrank.OIPSR, C: 0.6, K: 8,
			BlockSize: 128, MaxMemoryBytes: denseState / 2, SpillDir: b.TempDir()})
	})
}

// --- Ablations (DESIGN.md) ---

func BenchmarkAblationOuterSharing(b *testing.B) {
	g := web()
	b.Run("outer=on", func(b *testing.B) {
		runAlgo(b, g, simrank.Options{C: 0.6, K: 10})
	})
	b.Run("outer=off", func(b *testing.B) {
		runAlgo(b, g, simrank.Options{C: 0.6, K: 10, DisableOuterSharing: true})
	})
}

func BenchmarkAblationCandidates(b *testing.B) {
	g := web()
	b.Run("candidates=sparse", func(b *testing.B) {
		runAlgo(b, g, simrank.Options{C: 0.6, K: 5})
	})
	b.Run("candidates=dense", func(b *testing.B) {
		runAlgo(b, g, simrank.Options{C: 0.6, K: 5, DensePartition: true})
	})
	b.Run("candidates=capped8", func(b *testing.B) {
		runAlgo(b, g, simrank.Options{C: 0.6, K: 5, PairCap: 8})
	})
}

func BenchmarkAblationMST(b *testing.B) {
	g := web()
	b.Run("mst=greedy", func(b *testing.B) {
		runAlgo(b, g, simrank.Options{C: 0.6, K: 5})
	})
	b.Run("mst=edmonds", func(b *testing.B) {
		runAlgo(b, g, simrank.Options{C: 0.6, K: 5, UseEdmonds: true})
	})
}

func BenchmarkAblationPsumThreshold(b *testing.B) {
	g := web()
	b.Run("threshold=0", func(b *testing.B) {
		runAlgo(b, g, simrank.Options{Algorithm: simrank.PsumSR, C: 0.6, K: 10})
	})
	b.Run("threshold=1e-4", func(b *testing.B) {
		runAlgo(b, g, simrank.Options{Algorithm: simrank.PsumSR, C: 0.6, K: 10, Threshold: 1e-4})
	})
}
