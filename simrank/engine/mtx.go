package engine

import (
	"context"

	"oipsr/graph"
	"oipsr/internal/mtxsr"
	"oipsr/internal/simmat"
)

func init() { Register(mtxEngine{base{MtxSR}}) }

// mtxEngine is Li et al.'s SVD-based low-rank approximation.
type mtxEngine struct{ base }

func (mtxEngine) Caps() Caps { return Caps{AllPairs: true} }

func (mtxEngine) Compute(_ context.Context, g *graph.Graph, p Params) (simmat.Source, *Stats, error) {
	c := p.C
	if c == 0 {
		c = 0.6
	}
	m, st, err := mtxsr.Compute(g, mtxsr.Options{
		C:       c,
		Rank:    p.Rank,
		Seed:    p.Seed,
		Workers: p.Workers,
	})
	if err != nil {
		return nil, nil, err
	}
	return m, &Stats{
		Algorithm:   MtxSR,
		Iterations:  st.SolveIters,
		PlanTime:    st.SVDTime,
		ComputeTime: st.SolveTime,
		AuxBytes:    st.AuxBytes,
		StateBytes:  simmat.StateBytes(g.NumVertices(), 1),
		Rank:        st.Rank,
		Residual:    st.Residual,
	}, nil
}
