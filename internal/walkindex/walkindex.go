// Package walkindex builds and queries a persistent index of coupled
// reverse random walks, the precomputation that turns single-source and
// top-k SimRank queries into sub-millisecond lookups (the SLING / ProbeSim
// serving model applied to the Fogaras-Racz estimator already used by the
// batch Monte Carlo engine).
//
// The index stores, for every vertex v and every fingerprint r, the full
// path of a reverse random walk of horizon K started at v. Walks within one
// fingerprint are coupled exactly as in the batch estimator: the in-edge a
// walker takes depends only on (fingerprint, step, current vertex), so
// walkers standing on the same vertex move together and coalesce once they
// meet. The edge choice is a pure hash of (seed, fingerprint, step, vertex)
// rather than a sequential RNG stream, which makes the build embarrassingly
// parallel over vertices — every worker computes identical paths regardless
// of scheduling — and makes an index fully reproducible from (graph,
// Options) alone.
//
// A single-source query against vertex q scans the stored paths: for every
// other vertex v and every fingerprint, the first step t at which q's and
// v's walkers stand on the same vertex contributes C^t, and the average
// over fingerprints estimates s(q, v) truncated at horizon K. The scan is
// O(R*K) per vertex with sequential access into one contiguous walk block,
// so a query costs O(n*R*K) independent of the graph — no Theta(n^2) state
// is ever materialized.
//
// Storage is laid out vertex-major — entry (r*K + t) of vertex v's walk
// block is the position of v's fingerprint-r walker after step t+1, or -1
// once the walk has died at an in-degree-0 vertex — so the per-vertex
// query scan is one contiguous range. The blocks live behind the PathStore
// seam (store.go): a dense in-memory slice for fresh builds and format-v1
// loads, or an mmap-backed pager over the compressed format v2
// (mapped.go). See serialize.go for the versioned on-disk formats.
package walkindex

import (
	"context"
	"fmt"
	"math"

	"oipsr/graph"
	"oipsr/internal/par"
)

// Options configure Build.
type Options struct {
	// C is the damping factor in (0,1); 0 means 0.6.
	C float64
	// K is the walk horizon; 0 derives it from Eps as the smallest K with
	// C^(K+1) <= Eps, matching the iterative engines' truncation.
	K int
	// Eps is the truncation target used when K == 0; 0 means 1e-3.
	Eps float64
	// Walks is the number of fingerprints R; 0 means 100. The standard
	// error of each estimated score scales as 1/sqrt(R).
	Walks int
	// Seed makes the index deterministic: the same (graph, Options) always
	// produce bit-identical indexes, for any worker count.
	Seed int64
	// Workers sets the build worker-pool size: 1 means serial, anything
	// below 1 means runtime.GOMAXPROCS(0).
	Workers int
}

// Index is a built walk index, safe for concurrent queries. Update (see
// update.go) is the one mutating operation; callers must serialize it
// against queries and other Updates.
type Index struct {
	n    int     // vertices
	k    int     // walk horizon
	r    int     // fingerprints per vertex
	c    float64 // damping factor
	seed int64

	// store backs the per-vertex walk blocks: Row(v) holds r*k entries
	// where entry fp*k+t is the position of v's fingerprint-fp walker
	// after step t+1, or -1 if the walk died at or before that step. See
	// store.go for the seam and its dense/mapped implementations.
	store PathStore

	// pow[t] = c^(t+1), the first-meeting weight of path index t.
	pow []float64

	// visits is the inverted visit index used for incremental updates:
	// visits[x] lists every walk whose path occupies x, with the first
	// occupancy time. Nil until PrepareUpdate / the first Update builds it
	// (see update.go); derived state, excluded from Equal and Save.
	visits [][]visitPosting
}

// resolve normalizes Options in place: defaults filled, the horizon
// derived from Eps when K is zero, bounds validated. Build and BuildShard
// share it so a shard set and a full index resolve identical parameters
// from identical flags.
func (opt *Options) resolve() error {
	if opt.C == 0 {
		opt.C = 0.6
	}
	if !(opt.C > 0 && opt.C < 1) {
		return fmt.Errorf("walkindex: damping factor %v outside (0,1)", opt.C)
	}
	if opt.K < 0 || opt.Walks < 0 {
		return fmt.Errorf("walkindex: negative K or Walks")
	}
	if opt.K == 0 {
		eps := opt.Eps
		if eps == 0 {
			eps = 1e-3
		}
		if !(eps > 0 && eps < 1) {
			return fmt.Errorf("walkindex: accuracy eps %v outside (0,1)", eps)
		}
		opt.K = int(math.Ceil(math.Log(eps)/math.Log(opt.C) - 1))
		if opt.K < 1 {
			opt.K = 1
		}
	}
	if opt.Walks == 0 {
		opt.Walks = 100
	}
	// edgeChoice packs fp and t into 16-bit fields; beyond that, distinct
	// (fingerprint, step) pairs would alias and correlate the walks.
	if opt.K > 0xFFFF || opt.Walks > 0xFFFF {
		return fmt.Errorf("walkindex: K = %d and Walks = %d must each be <= %d", opt.K, opt.Walks, 0xFFFF)
	}
	return nil
}

// Build constructs the walk index for g.
func Build(g *graph.Graph, opt Options) (*Index, error) {
	if err := opt.resolve(); err != nil {
		return nil, err
	}

	n := g.NumVertices()
	paths := make([]int32, n*opt.Walks*opt.K)
	ix := &Index{
		n:     n,
		k:     opt.K,
		r:     opt.Walks,
		c:     opt.C,
		seed:  opt.Seed,
		store: newDenseStore(paths, opt.Walks*opt.K),
	}
	ix.initPow()

	hseed := splitmix64(uint64(opt.Seed))
	workers := par.ResolveMax(opt.Workers, n)
	par.Do(workers, func(w int) {
		lo, hi := par.Range(n, workers, w)
		for v := lo; v < hi; v++ {
			base := v * ix.r * ix.k
			for fp := 0; fp < ix.r; fp++ {
				walkFrom(g, hseed, fp, 0, v, paths[base+fp*ix.k:base+(fp+1)*ix.k])
			}
		}
	})
	return ix, nil
}

// walkFrom fills path[tau:] with the coupled reverse walk of fingerprint fp
// standing on vertex p before step tau (tau 0 with p = start vertex is a
// whole walk; Update's suffix repair passes the first dirty occupancy). A
// prefix slice (len(path) < K) yields exactly the first len(path) entries
// of the full walk, because each step depends only on the previous
// position — shards exploit this to recompute foreign walks on demand,
// bit-identically to what a full Build would have stored.
func walkFrom(g *graph.Graph, hseed uint64, fp, tau, p int, path []int32) {
	for t := tau; t < len(path); t++ {
		in := g.In(p)
		if len(in) == 0 {
			for ; t < len(path); t++ {
				path[t] = -1
			}
			return
		}
		p = in[edgeChoice(hseed, fp, t, p, len(in))]
		path[t] = int32(p)
	}
}

func (ix *Index) initPow() {
	ix.pow = make([]float64, ix.k)
	w := 1.0
	for t := 0; t < ix.k; t++ {
		w *= ix.c
		ix.pow[t] = w
	}
}

// edgeChoice is the shared coupled move: the in-edge index every walker
// standing on vertex x takes at step t of fingerprint fp. It depends only
// on (seed, fp, t, x), never on which start vertex the walker belongs to,
// so co-located walkers coalesce exactly as in the batch estimator. The
// three fields occupy disjoint bit ranges (fp: 48+, t: 32..47, x: 0..31;
// Build enforces the fp/t bounds), so distinct (fp, t, x) triples can
// never alias before mixing.
func edgeChoice(hseed uint64, fp, t, x, deg int) int {
	h := splitmix64(hseed ^ (uint64(fp)<<48 | uint64(t)<<32 | uint64(x)))
	return int(h % uint64(deg))
}

// splitmix64 is the SplitMix64 finalizer, a fast high-quality bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// N returns the number of indexed vertices.
func (ix *Index) N() int { return ix.n }

// Horizon returns the walk horizon K.
func (ix *Index) Horizon() int { return ix.k }

// Walks returns the number of fingerprints R.
func (ix *Index) Walks() int { return ix.r }

// C returns the damping factor.
func (ix *Index) C() float64 { return ix.c }

// Seed returns the seed the index was built with.
func (ix *Index) Seed() int64 { return ix.seed }

// Bytes returns the resident in-memory size of the path storage: the full
// payload for a dense index, the decoded-block cache footprint for a
// mapped one.
func (ix *Index) Bytes() int64 { return ix.store.Bytes() }

// Backend names the storage backend ("dense" or "mapped").
func (ix *Index) Backend() string { return ix.store.Kind() }

// Close releases the storage backend (the file handle and mapping of a
// mapped index). The index must not be queried afterwards. Closing a dense
// index is a no-op, so callers can defer it unconditionally.
func (ix *Index) Close() error { return ix.store.Close() }

// cancelCheckTargets is how many target vertices a sweep processes
// between context-cancellation polls: each target costs O(R·K) work, so
// polling every 64 keeps the overhead unmeasurable while an abandoned
// request stops burning CPU within a few hundred microseconds.
const cancelCheckTargets = 64

// SingleSource estimates s(q, v) for every v and writes the result into
// dst, which must have length N() (pass nil to allocate). It returns dst.
// The estimate for q itself is exactly 1. Cancelling ctx abandons the
// sweep at the next chunk boundary and returns the context's error; the
// contents of dst are then unspecified. An uncancelled ctx never changes
// the result: the scores are bit-identical to a context-free sweep.
func (ix *Index) SingleSource(ctx context.Context, q int, dst []float64) ([]float64, error) {
	if dst == nil {
		dst = make([]float64, ix.n)
	}
	qp := ix.store.Row(q)
	inv := 1 / float64(ix.r)
	check := par.NewCancelChecker(ctx, cancelCheckTargets)
	for v := 0; v < ix.n; v++ {
		if err := check.Stop(); err != nil {
			return nil, err
		}
		if v == q {
			continue
		}
		vp := ix.store.Row(v)
		var s float64
		for fp := 0; fp < ix.r; fp++ {
			off := fp * ix.k
			for t := 0; t < ix.k; t++ {
				pq, pv := qp[off+t], vp[off+t]
				if pq < 0 || pv < 0 {
					break // a dead walker never meets anyone
				}
				if pq == pv {
					s += ix.pow[t] // first meeting only: C^(t+1)
					break
				}
			}
		}
		dst[v] = s * inv
	}
	dst[q] = 1
	return dst, nil
}

// Pair estimates the single score s(a, b). It runs the same accumulation
// as SingleSource — first-meeting weights in fingerprint order, scaled by
// the same precomputed 1/R — so Pair(a, b) is bit-identical to
// SingleSource(a, nil)[b] (and, by symmetry of the meeting computation, to
// SingleSource(b, nil)[a] and to the MultiSource and Join estimates).
func (ix *Index) Pair(a, b int) float64 {
	if a == b {
		return 1
	}
	return pairFromRows(ix.store.Row(a), ix.store.Row(b), ix.pow, ix.k, ix.r)
}

// pairFromRows runs the first-meeting accumulation over two walk blocks
// (r*k entries each, walk-major). Index.Pair and ShardIndex scoring both
// go through it, so a shard scoring a pair from recomputed rows produces
// the unsharded estimate bit for bit.
func pairFromRows(ap, bp []int32, pow []float64, k, r int) float64 {
	var s float64
	for fp := 0; fp < r; fp++ {
		off := fp * k
		for t := 0; t < k; t++ {
			pa, pb := ap[off+t], bp[off+t]
			if pa < 0 || pb < 0 {
				break
			}
			if pa == pb {
				s += pow[t]
				break
			}
		}
	}
	return s * (1 / float64(r))
}

// Equal reports whether two indexes hold identical parameters and paths
// (and therefore answer every query bit-identically).
func (ix *Index) Equal(other *Index) bool {
	if ix.n != other.n || ix.k != other.k || ix.r != other.r ||
		ix.c != other.c || ix.seed != other.seed {
		return false
	}
	for v := 0; v < ix.n; v++ {
		a, b := ix.store.Row(v), other.store.Row(v)
		for i, p := range a {
			if b[i] != p {
				return false
			}
		}
	}
	return true
}
