package query

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"sync/atomic"

	"oipsr/graph"
	"oipsr/internal/atomicio"
	"oipsr/internal/par"
	"oipsr/internal/walkindex"
)

// Options configure BuildIndex. The zero value means C = 0.6, horizon from
// eps = 1e-3, 100 walks per vertex, seed 0, all CPUs.
type Options struct {
	// C is the damping factor in (0,1); 0 means 0.6.
	C float64
	// K is the walk horizon; 0 derives the smallest K with C^(K+1) <= Eps,
	// matching the iterative engines' truncation.
	K int
	// Eps is the truncation target used when K == 0; 0 means 1e-3.
	Eps float64
	// Walks is the number of walk fingerprints R stored per vertex; 0
	// means 100. Estimate error scales as 1/sqrt(R); index size as R.
	Walks int
	// Seed makes the index deterministic and reproducible.
	Seed int64
	// Workers sets the build worker-pool size: 1 means serial, anything
	// below 1 means runtime.GOMAXPROCS(0). The index is bit-identical for
	// every worker count.
	Workers int
}

// Index answers single-source and top-k SimRank queries. It is safe for
// concurrent queries; Update and ApplyEdits are the only mutating
// operations and must be serialized against queries by the caller (the
// simrankd server holds an RWMutex: queries under the read lock, updates
// under the write lock).
type Index struct {
	wi *walkindex.Index
	// g is the graph the index was built from; needed for exact reranking
	// and for ApplyEdits. Nil after Load until AttachGraph.
	g *graph.Graph
	// gen counts applied updates; cache layers fold it into their keys so
	// pre-update responses can never be served post-update.
	gen atomic.Uint64
	// exact lazily holds the linearized-SimRank solver behind
	// ExactSingleSource, keyed by (generation, graph) so edits invalidate
	// it; see exactengine.go.
	exact exactState
}

// Ranked is one entry of a top-k result.
type Ranked struct {
	Vertex int     `json:"vertex"`
	Score  float64 `json:"score"`
}

// BuildIndex precomputes the walk index for g. The graph stays attached,
// so TopK reranking works immediately.
func BuildIndex(g *graph.Graph, opt Options) (*Index, error) {
	wi, err := walkindex.Build(g, walkindex.Options{
		C:       opt.C,
		K:       opt.K,
		Eps:     opt.Eps,
		Walks:   opt.Walks,
		Seed:    opt.Seed,
		Workers: opt.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &Index{wi: wi, g: g}, nil
}

// N returns the number of indexed vertices.
func (ix *Index) N() int { return ix.wi.N() }

// C returns the damping factor the index was built with.
func (ix *Index) C() float64 { return ix.wi.C() }

// Horizon returns the walk horizon K.
func (ix *Index) Horizon() int { return ix.wi.Horizon() }

// Walks returns the number of fingerprints R per vertex.
func (ix *Index) Walks() int { return ix.wi.Walks() }

// Seed returns the build seed.
func (ix *Index) Seed() int64 { return ix.wi.Seed() }

// Bytes returns the in-memory size of the walk storage.
func (ix *Index) Bytes() int64 { return ix.wi.Bytes() }

// Graph returns the attached graph, or nil for a loaded index without
// AttachGraph.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// Generation returns the number of updates applied since build/load.
// Response caches fold it into their keys, so bumping it invalidates every
// pre-update entry at once.
func (ix *Index) Generation() uint64 { return ix.gen.Load() }

// Equal reports whether two indexes answer every query bit-identically
// (same parameters and walk paths; attached graphs and generations are not
// compared).
func (ix *Index) Equal(other *Index) bool { return ix.wi.Equal(other.wi) }

// ErrTooLarge is returned by Update/ApplyEdits/PrepareUpdates when the
// index has too many walks for incremental maintenance (n·R beyond the
// 32-bit posting limit). It marks a capacity limit of this build, not a
// bad request — servers map it to a 5xx.
var ErrTooLarge = walkindex.ErrTooLarge

// UpdateStats describes one applied edit batch.
type UpdateStats struct {
	// EdgesAdded and EdgesRemoved count the effective edge changes (no-op
	// edits excluded).
	EdgesAdded, EdgesRemoved int
	// DirtyVertices is the number of vertices whose in-neighbor list
	// changed — the repair frontier handed to the walk index.
	DirtyVertices int
	// WalksRepaired is the number of walks whose suffix was recomputed.
	WalksRepaired int
	// Generation is the index generation after this update.
	Generation uint64
}

// Update repairs the index in place after the graph changed into g2, where
// dirty lists every vertex whose in-neighbor list differs (see
// graph.EditSummary.DirtyIn). The repaired index is bit-identical to a
// fresh BuildIndex on g2 with the same options; only the suffixes of walks
// through dirty vertices are recomputed, in parallel across workers (1 =
// serial, <1 = all CPUs). g2 replaces the attached graph and the
// generation is bumped. Update must not run concurrently with queries.
func (ix *Index) Update(g2 *graph.Graph, dirty []int, workers int) (walksRepaired int, err error) {
	changed, err := ix.wi.Update(g2, dirty, workers)
	if err != nil {
		return 0, err
	}
	ix.g = g2
	ix.gen.Add(1)
	return changed, nil
}

// ApplyEdits applies a batch of edge edits to the attached graph and
// repairs the index incrementally (see Update for the guarantees). It
// requires an attached graph — call AttachGraph first on a loaded index.
// On error the index and graph are unchanged.
func (ix *Index) ApplyEdits(edits []graph.Edit, workers int) (UpdateStats, error) {
	if ix.g == nil {
		return UpdateStats{}, fmt.Errorf("query: ApplyEdits needs the source graph (AttachGraph after Load)")
	}
	g2, sum, err := ix.g.ApplyEdits(edits)
	if err != nil {
		return UpdateStats{}, err
	}
	// A batch of pure no-ops changes nothing: keep the generation (and
	// with it every cached response) instead of invalidating for naught.
	if len(sum.DirtyIn) == 0 && len(sum.DirtyOut) == 0 {
		return UpdateStats{Generation: ix.gen.Load()}, nil
	}
	changed, err := ix.Update(g2, sum.DirtyIn, workers)
	if err != nil {
		return UpdateStats{}, err
	}
	return UpdateStats{
		EdgesAdded:    sum.Added,
		EdgesRemoved:  sum.Removed,
		DirtyVertices: len(sum.DirtyIn),
		WalksRepaired: changed,
		Generation:    ix.gen.Load(),
	}, nil
}

// PrepareUpdates eagerly builds the inverted visit index that Update
// otherwise builds lazily on first use, moving that one-time cost out of
// the first edit batch's latency (the simrankd server calls this at
// startup when updates are enabled).
func (ix *Index) PrepareUpdates(workers int) error {
	return ix.wi.PrepareUpdate(workers)
}

// AttachGraph re-attaches the source graph to a loaded index, enabling
// exact reranking. The graph must have the same vertex count the index was
// built from (a different graph silently poisons rerank scores, so at
// least the cheap invariant is enforced).
func (ix *Index) AttachGraph(g *graph.Graph) error {
	if g.NumVertices() != ix.wi.N() {
		return fmt.Errorf("query: graph has %d vertices, index was built on %d", g.NumVertices(), ix.wi.N())
	}
	ix.g = g
	return nil
}

// SingleSource estimates s(q, v) for every vertex v and returns the dense
// score vector; entry q is exactly 1. Cancelling ctx (a client gone, a
// server deadline) abandons the sweep at the next chunk boundary and
// returns the context's error; an uncancelled ctx never changes the
// scores.
func (ix *Index) SingleSource(ctx context.Context, q int) ([]float64, error) {
	return ix.SingleSourceInto(ctx, q, nil)
}

// SingleSourceInto is SingleSource writing into a caller-owned buffer:
// dst must have length N() (nil allocates). Servers reuse pooled buffers
// across requests to keep the hot path allocation-free; the returned
// slice is dst. On cancellation dst's contents are unspecified.
func (ix *Index) SingleSourceInto(ctx context.Context, q int, dst []float64) ([]float64, error) {
	if q < 0 || q >= ix.wi.N() {
		return nil, fmt.Errorf("query: vertex %d out of range [0,%d)", q, ix.wi.N())
	}
	if dst != nil && len(dst) != ix.wi.N() {
		return nil, fmt.Errorf("query: buffer length %d, want %d", len(dst), ix.wi.N())
	}
	return ix.wi.SingleSource(ctx, q, dst)
}

// Pair estimates the single score s(a, b).
func (ix *Index) Pair(a, b int) (float64, error) {
	n := ix.wi.N()
	if a < 0 || a >= n || b < 0 || b >= n {
		return 0, fmt.Errorf("query: pair (%d,%d) out of range [0,%d)", a, b, n)
	}
	return ix.wi.Pair(a, b), nil
}

// TopKOptions tune a TopK call. The zero value (or a nil pointer) means:
// rank by index estimates alone, no reranking.
type TopKOptions struct {
	// Rerank re-scores a candidate pool exactly (truncated SimRank via
	// pruned partial-sums iteration) and re-ranks by the exact scores.
	// Requires an attached graph.
	Rerank bool
	// Candidates is the pool size reranking draws from the estimated
	// ranking; 0 means max(4k, k+16). Larger pools raise recall and cost.
	Candidates int
	// PruneEps stops the exact recursion once a branch's accumulated
	// weight — its maximum possible contribution to the root score —
	// falls below it; 0 means 1e-5. Larger values are faster and less
	// exact.
	PruneEps float64
}

// TopK returns the k vertices most similar to q, excluding q itself, in
// decreasing score order with ties broken by vertex id. With opt.Rerank
// the scores are exact truncated SimRank values for the candidate pool;
// otherwise they are the index estimates. Cancelling ctx abandons the
// call — during the score sweep or between rerank candidates — and
// returns the context's error.
func (ix *Index) TopK(ctx context.Context, q, k int, opt *TopKOptions) ([]Ranked, error) {
	n := ix.wi.N()
	if q < 0 || q >= n {
		return nil, fmt.Errorf("query: vertex %d out of range [0,%d)", q, n)
	}
	if k < 1 {
		return nil, fmt.Errorf("query: top-k size %d < 1", k)
	}
	if k > n-1 {
		k = n - 1
	}
	if opt == nil {
		opt = &TopKOptions{}
	}
	if opt.Rerank && ix.g == nil {
		return nil, fmt.Errorf("query: rerank needs the source graph (AttachGraph after Load)")
	}
	scores, err := ix.wi.SingleSource(ctx, q, nil)
	if err != nil {
		return nil, err
	}
	return ix.rankFromScores(ctx, scores, q, k, opt)
}

// TopKFromScores finishes a TopK query from an already-computed dense
// score row (as returned by SingleSource/SingleSourceInto for the same q):
// candidate selection, then the optional exact rerank. TopK(ctx, q, k, opt)
// and SingleSourceInto + TopKFromScores produce bit-identical results —
// the split exists for servers that obtain the row via a pooled buffer and
// must decide between exact and estimate-only ranking per request (e.g.
// degrading under a deadline) without recomputing the sweep.
func (ix *Index) TopKFromScores(ctx context.Context, scores []float64, q, k int, opt *TopKOptions) ([]Ranked, error) {
	n := ix.wi.N()
	if len(scores) != n {
		return nil, fmt.Errorf("query: score row length %d, want %d", len(scores), n)
	}
	if q < 0 || q >= n {
		return nil, fmt.Errorf("query: vertex %d out of range [0,%d)", q, n)
	}
	if k < 1 {
		return nil, fmt.Errorf("query: top-k size %d < 1", k)
	}
	if k > n-1 {
		k = n - 1
	}
	if opt == nil {
		opt = &TopKOptions{}
	}
	if opt.Rerank && ix.g == nil {
		return nil, fmt.Errorf("query: rerank needs the source graph (AttachGraph after Load)")
	}
	return ix.rankFromScores(ctx, scores, q, k, opt)
}

// RerankPoolSize reports how many candidates a TopK rerank with this k and
// TopKOptions.Candidates would re-score — the exact pool the rerank uses,
// exported so servers can estimate rerank cost (deadline-aware degradation
// multiplies it by a measured per-candidate cost).
func (ix *Index) RerankPoolSize(k, candidates int) int {
	return RerankPool(ix.wi.N(), k, candidates)
}

// RerankPool is RerankPoolSize as a free function over the vertex count,
// for callers (the scatter/gather router) that size rerank work without
// holding an Index.
func RerankPool(n, k, candidates int) int {
	if k > n-1 {
		k = n - 1
	}
	pool := candidates
	if pool <= 0 {
		pool = max(4*k, k+16)
	}
	if pool > n-1 {
		pool = n - 1
	}
	return max(pool, 0)
}

// rankFromScores turns one dense score row into the final top-k result:
// candidate selection by estimated score, then the optional exact rerank.
// TopK and TopKBatch both end here — sharing the code is what makes the
// batched path bit-identical to independent calls by construction. Callers
// validate q/k/opt (k already clamped to at most n-1) and, when reranking,
// an attached graph. The only error source is ctx: the rerank polls it
// between candidates (each exact pair score is expensive enough to check
// every time) and abandons the call with the context's error.
func (ix *Index) rankFromScores(ctx context.Context, scores []float64, q, k int, opt *TopKOptions) ([]Ranked, error) {
	return RankScores(ctx, ix.g, ix.wi.C(), ix.wi.Horizon(), scores, q, k, opt)
}

// RankScores finishes a top-k query from a dense score row without an
// Index: candidate selection by estimated score, then the optional exact
// rerank against g with damping factor c and horizon K. It is the exact
// code path TopK ends in, exported for the scatter/gather router, which
// assembles the dense row from per-shard partials and must rank it — and
// rerank the globally merged candidate pool in ONE place, because the
// exact scorer's memoization is accuracy-preserving but not bit-stable
// across visiting orders, so reranking per shard and merging would not
// reproduce the single-node scores.
//
// Callers validate q/k (k already clamped to at most n-1) and, when
// opt.Rerank is set, pass the non-nil graph the scores were computed
// against. The only error source is ctx cancellation.
func RankScores(ctx context.Context, g *graph.Graph, c float64, horizon int, scores []float64, q, k int, opt *TopKOptions) ([]Ranked, error) {
	n := len(scores)
	if opt == nil {
		opt = &TopKOptions{}
	}
	pool := k
	if opt.Rerank {
		pool = opt.Candidates
		if pool <= 0 {
			pool = max(4*k, k+16)
		}
		if pool > n-1 {
			pool = n - 1
		}
	}
	cands := topByScore(scores, q, pool)

	if opt.Rerank {
		pruneEps := opt.PruneEps
		if pruneEps == 0 {
			pruneEps = 1e-5
		}
		// A fresh scorer per call: the memo's weight-bounded reuse is
		// accuracy-preserving but not bit-stable across visiting orders, so
		// sharing one scorer across a batch could (harmlessly but
		// detectably) perturb scores. Independent memos keep the batch
		// bit-identical to independent TopK calls.
		ex := newExactScorer(g, c, horizon, pruneEps)
		check := par.NewCancelChecker(ctx, 1)
		for i := range cands {
			if err := check.Stop(); err != nil {
				return nil, err
			}
			cands[i].Score = ex.pair(q, cands[i].Vertex)
		}
		sort.SliceStable(cands, func(i, j int) bool {
			if cands[i].Score != cands[j].Score {
				return cands[i].Score > cands[j].Score
			}
			return cands[i].Vertex < cands[j].Vertex
		})
	}
	if k > len(cands) {
		k = len(cands)
	}
	return cands[:k], nil
}

// topByScore selects the top-m vertices by score, excluding skip, in
// decreasing score order with ties broken by vertex id. It keeps a small
// sorted tail instead of sorting all n entries: O(n log m).
func topByScore(scores []float64, skip, m int) []Ranked {
	out := make([]Ranked, 0, max(m, 0))
	if m <= 0 {
		return out
	}
	for v, s := range scores {
		if v == skip {
			continue
		}
		if len(out) == m {
			last := out[m-1]
			if s < last.Score || (s == last.Score && v > last.Vertex) {
				continue
			}
			out = out[:m-1]
		}
		// Insert keeping (score desc, id asc) order.
		i := sort.Search(len(out), func(i int) bool {
			return out[i].Score < s || (out[i].Score == s && out[i].Vertex > v)
		})
		out = append(out, Ranked{})
		copy(out[i+1:], out[i:])
		out[i] = Ranked{Vertex: v, Score: s}
	}
	return out
}

// Save writes the index (not the graph) to w in the versioned binary
// walk-index format; see oipsr/internal/walkindex for the layout.
func (ix *Index) Save(w io.Writer) error { return ix.wi.Save(w) }

// Load reads an index written by Save. The result answers SingleSource,
// Pair, and estimate-only TopK immediately; call AttachGraph to enable
// reranking. Load rejects truncated files, corrupted payloads (CRC), and
// format-version mismatches.
func Load(r io.Reader) (*Index, error) {
	wi, err := walkindex.Load(r)
	if err != nil {
		return nil, err
	}
	return &Index{wi: wi}, nil
}

// SaveFile writes the index to path durably and atomically: the payload is
// written to a sibling temp file, fsynced, renamed over path, and the
// directory is fsynced so the rename itself survives a crash. A crash at
// any point leaves either the old file or the complete new one — never a
// truncated or empty index.
func (ix *Index) SaveFile(path string) error {
	return atomicio.WriteFile(path, ix.Save)
}

// LoadFile reads an index from path.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
