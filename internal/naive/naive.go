// Package naive implements the original Jeh-Widom SimRank iteration (Eq. 2
// of the paper) without any memoization: s_{k+1}(a,b) is computed by summing
// the previous scores of every in-neighbor pair, costing O(K d^2 n^2) time.
//
// The paper uses this algorithm both as the historical baseline and as the
// semantic ground truth: psum-SR and OIP-SR are pure computational
// reorganizations of the very same iteration and must produce identical
// scores. This package is therefore the oracle every optimized engine is
// cross-validated against.
package naive

import (
	"fmt"

	"oipsr/graph"
	"oipsr/internal/par"
	"oipsr/internal/simmat"
)

// Compute runs K iterations of Eq. 2 with damping factor c and returns s_K.
// It is the serial oracle form of ComputeWorkers.
func Compute(g *graph.Graph, c float64, k int) (*simmat.Matrix, error) {
	return ComputeWorkers(g, c, k, 1)
}

// ComputeWorkers is Compute with the row loop of each iteration split
// across a worker pool (workers < 1 means runtime.GOMAXPROCS(0)). Rows are
// embarrassingly parallel — row a reads only the previous iterate — and
// each row's arithmetic is unchanged, so the result is bit-identical for
// every worker count.
func ComputeWorkers(g *graph.Graph, c float64, k, workers int) (*simmat.Matrix, error) {
	if !(c > 0 && c < 1) {
		return nil, fmt.Errorf("naive: damping factor %v outside (0,1)", c)
	}
	if k < 0 {
		return nil, fmt.Errorf("naive: negative iteration count %d", k)
	}
	n := g.NumVertices()
	workers = par.ResolveMax(workers, n)
	prev := simmat.NewIdentity(n)
	if k == 0 {
		return prev, nil
	}
	next := simmat.New(n)
	for iter := 0; iter < k; iter++ {
		par.Do(workers, func(w int) {
			lo, hi := par.Range(n, workers, w)
			step(g, c, prev, next, lo, hi)
		})
		// Canonicalize the iterate: the row-min(a,b) value becomes the
		// score of both orderings (copies only; see the simmat package
		// comment). Every engine shares this rule, so the oracle matches
		// the optimized engines cell for cell.
		next.MirrorUpper(workers)
		prev, next = next, prev
	}
	return prev, nil
}

// ComputeTiledWorkers is ComputeWorkers against the tiled score-matrix
// backend: the same Eq. 2 arithmetic with rows of the previous iterate
// staged out of tiles, bit-identical to the dense oracle for every block
// size and worker count. It exists so the conformance suite can pin the
// tiled storage layer against ground truth; the in-neighbor rows of each
// output row are staged densely, so peak auxiliary memory is
// O(workers * maxInDegree * n). The caller owns the result: Close it to
// release the tile store.
func ComputeTiledWorkers(g *graph.Graph, c float64, k, workers int, tile simmat.TileOptions) (*simmat.Tiled, error) {
	if !(c > 0 && c < 1) {
		return nil, fmt.Errorf("naive: damping factor %v outside (0,1)", c)
	}
	if k < 0 {
		return nil, fmt.Errorf("naive: negative iteration count %d", k)
	}
	store, err := simmat.NewTileStore(tile)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	workers = par.ResolveMax(workers, n)
	prev, err := store.NewIdentity(n)
	if err != nil {
		store.Close()
		return nil, err
	}
	if k == 0 {
		return prev, nil
	}
	next, err := store.NewTiled(n)
	if err != nil {
		store.Close()
		return nil, err
	}
	rowBufs := make([][]float64, workers)
	inRows := make([][][]float64, workers)
	for w := 0; w < workers; w++ {
		rowBufs[w] = make([]float64, n)
	}
	errs := make([]error, workers)
	for iter := 0; iter < k; iter++ {
		par.Do(workers, func(w int) {
			lo, hi := par.Range(n, workers, w)
			errs[w] = stepTiled(g, c, prev, next, lo, hi, rowBufs[w], &inRows[w])
		})
		for _, err := range errs {
			if err != nil {
				store.Close()
				return nil, err
			}
		}
		prev, next = next, prev
	}
	next.Release()
	return prev, nil
}

// step computes rows [lo, hi) of one iteration of Eq. 2 from prev into next.
func step(g *graph.Graph, c float64, prev, next *simmat.Matrix, lo, hi int) {
	n := g.NumVertices()
	for a := lo; a < hi; a++ {
		ia := g.In(a)
		rowNext := next.Row(a)
		for b := 0; b < n; b++ {
			switch {
			case a == b:
				rowNext[b] = 1
			case len(ia) == 0 || g.InDegree(b) == 0:
				rowNext[b] = 0
			default:
				ib := g.In(b)
				sum := 0.0
				for _, i := range ia {
					rowPrev := prev.Row(i)
					for _, j := range ib {
						sum += rowPrev[j]
					}
				}
				rowNext[b] = c / (float64(len(ia)) * float64(len(ib))) * sum
			}
		}
	}
}

// stepTiled computes rows [lo, hi) of one Eq. 2 iteration against tiled
// storage: the prev rows of I(a) are staged into *inRows (grown on demand),
// the row is computed into rowBuf with exactly step's arithmetic, and its
// canonical upper segment is stored.
func stepTiled(g *graph.Graph, c float64, prev, next *simmat.Tiled, lo, hi int, rowBuf []float64, inRows *[][]float64) error {
	n := g.NumVertices()
	for a := lo; a < hi; a++ {
		ia := g.In(a)
		for len(*inRows) < len(ia) {
			*inRows = append(*inRows, make([]float64, n))
		}
		for idx, i := range ia {
			if err := prev.RowInto(i, (*inRows)[idx]); err != nil {
				return err
			}
		}
		for b := 0; b < n; b++ {
			switch {
			case a == b:
				rowBuf[b] = 1
			case len(ia) == 0 || g.InDegree(b) == 0:
				rowBuf[b] = 0
			default:
				ib := g.In(b)
				sum := 0.0
				for idx := range ia {
					rowPrev := (*inRows)[idx]
					for _, j := range ib {
						sum += rowPrev[j]
					}
				}
				rowBuf[b] = c / (float64(len(ia)) * float64(len(ib))) * sum
			}
		}
		if err := next.SetRowUpper(a, rowBuf); err != nil {
			return err
		}
	}
	return nil
}
