package histogram

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketAssignment: each observation lands in the first bucket whose
// upper bound is >= the value (le semantics), and the exposition is
// cumulative.
func TestBucketAssignment(t *testing.T) {
	h := New([]float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // le 0.001
	h.Observe(time.Millisecond)       // boundary: still le 0.001
	h.Observe(5 * time.Millisecond)   // le 0.01
	h.Observe(50 * time.Millisecond)  // le 0.1
	h.Observe(2 * time.Second)        // +Inf

	var b strings.Builder
	h.WriteProm(&b, "x_seconds")
	out := b.String()
	for _, want := range []string{
		`x_seconds_bucket{le="0.001"} 2`,
		`x_seconds_bucket{le="0.01"} 3`,
		`x_seconds_bucket{le="0.1"} 4`,
		`x_seconds_bucket{le="+Inf"} 5`,
		`x_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	wantSum := 0.0005 + 0.001 + 0.005 + 0.05 + 2
	var gotSum float64
	if _, err := fmt.Sscanf(out[strings.Index(out, "x_seconds_sum"):], "x_seconds_sum %g", &gotSum); err != nil {
		t.Fatalf("parsing sum: %v\n%s", err, out)
	}
	if math.Abs(gotSum-wantSum) > 1e-9 {
		t.Errorf("sum = %g, want %g", gotSum, wantSum)
	}
}

// TestDefBucketsSortedAndDeduped: New normalizes bounds; DefBuckets is
// already strictly increasing.
func TestDefBucketsSortedAndDeduped(t *testing.T) {
	h := New([]float64{0.5, 0.1, 0.5, 0.01})
	if len(h.bounds) != 3 {
		t.Fatalf("bounds = %v, want 3 deduped", h.bounds)
	}
	for i := 1; i < len(h.bounds); i++ {
		if h.bounds[i] <= h.bounds[i-1] {
			t.Fatalf("bounds not increasing: %v", h.bounds)
		}
	}
	d := New(nil)
	if len(d.bounds) != len(DefBuckets) {
		t.Fatalf("default bounds = %d, want %d", len(d.bounds), len(DefBuckets))
	}
}

// TestConcurrentObserve: concurrent observations are all counted (run
// under -race in CI).
func TestConcurrentObserve(t *testing.T) {
	h := New(nil)
	var wg sync.WaitGroup
	const goroutines, each = 8, 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(time.Duration(g*i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*each {
		t.Fatalf("count = %d, want %d", got, goroutines*each)
	}
}
