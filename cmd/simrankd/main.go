// Command simrankd serves single-source and top-k SimRank queries over
// HTTP from a persistent walk index (see oipsr/simrank/query).
//
// The daemon runs in one of four modes (-mode):
//
//	serve        single-node server over the whole graph (default)
//	build-shards partition the graph into -shards walk-index shards,
//	             publish them to -shard-dir with a sealed manifest, exit
//	shard        serve one vertex range: /shard/v1/* partial-result
//	             endpoints plus /v1/edges
//	router       stateless scatter/gather front: the full /v1/* surface,
//	             fanned out over -backends shard servers
//
// In serve mode the daemon loads the graph (edge-list file or generator),
// then loads the walk index from -index if the file exists, or builds it
// and — when -index is given — saves it for the next start. Queries are
// answered from the index alone; an LRU cache memoizes hot responses.
//
//	simrankd -gen web -n 5000 -d 11 -addr :8356
//	simrankd -graph web.txt -index web.idx -walks 200 -addr :8356
//
// For graphs whose dense index exceeds RAM, -build-budget streams the
// build to disk in bounded slices and -index-mmap serves the sealed file
// by demand paging, so neither building nor serving ever materializes
// the full walk payload:
//
//	simrankd -graph big.txt -index big.idx -build-budget 268435456 -index-mmap
//
// A sharded deployment of the same graph:
//
//	simrankd -mode build-shards -gen web -n 5000 -d 11 -shards 3 -shard-dir shards/
//	simrankd -mode shard -gen web -n 5000 -d 11 -shard-dir shards/ -shard-ordinal 0 -addr :8360
//	...                                          -shard-ordinal 1 -addr :8361
//	...                                          -shard-ordinal 2 -addr :8362
//	simrankd -mode router -gen web -n 5000 -d 11 -backends http://localhost:8360,http://localhost:8361,http://localhost:8362
//
// Endpoints (serve and router modes):
//
//	GET  /v1/single_source?q=17           dense score vector for vertex 17
//	GET  /v1/single_source?q=17&min=0.01  only entries with score >= 0.01
//	GET  /v1/topk?q=17&k=10               top-10 by index estimate
//	GET  /v1/topk?q=17&k=10&rerank=1      top-10 after exact reranking
//	POST /v1/batch                        many sources, one shared traversal (NDJSON)
//	POST /v1/join                         all-pairs top-k similarity join
//	POST /v1/edges                        batch edge adds/removes, applied live
//	GET  /healthz                         liveness + index parameters
//	GET  /metrics                         Prometheus-style counters
//
// /v1/single_source and /v1/topk additionally accept ?engine=, selecting
// the query family: "walk" (the default — the walk index's estimates,
// exactly as above) or "linearized" (the exact converged row, solved on
// demand through the linearized-system engine; see docs/API.md). The
// linearized engine pays a one-time per-graph diagonal solve on its first
// query; -prewarm-exact moves that cost to startup.
//
// Router answers are byte-identical to what a single-node server over the
// same graph would return; when a shard is unreachable the router answers
// from the shards it can reach and marks the response degraded instead of
// failing it. See docs/API.md for the full reference and ARCHITECTURE.md
// for the sharding design.
//
// Overload behavior: every /v1 request runs under -request-timeout
// (shortened per request via ?timeout_ms=, never extended); at most
// -max-inflight requests execute concurrently with a wait queue of
// -queue-depth behind them, beyond which requests are shed with 429 +
// Retry-After; reranked top-k requests whose remaining deadline cannot
// afford the exact rerank are served raw walk estimates marked degraded,
// and ?engine=linearized requests degrade to the walk estimates by the
// same cost-model rules when the exact solve no longer fits the deadline.
//
// The process shuts down gracefully on SIGINT/SIGTERM: it stops accepting
// connections and drains in-flight requests for -shutdown-drain; requests
// still running then have their contexts cancelled, which ends NDJSON
// streams with a terminal error line, and the server exits.
package main

import (
	"cmp"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/graph/gio"
	"oipsr/internal/simrankd"
	"oipsr/simrank/query"
	"oipsr/simrank/shard"
)

// options is everything the flag set decides, gathered so validation is
// one testable function instead of checks strewn through main.
type options struct {
	mode    string
	addr    string
	version bool

	graphPath string
	genType   string
	n, d      int
	seed      int64

	indexPath    string
	rebuild      bool
	indexFormat  int
	indexMmap    bool
	buildBudget  int64
	c            float64
	k            int
	eps          float64
	walks        int
	workers      int
	prewarm      bool
	prewarmExact bool

	cacheSize int
	maxBatch  int
	joinCand  int

	reqTimeout  time.Duration
	maxInflight int
	queueDepth  int
	drain       time.Duration

	shards       int
	shardOrdinal int
	shardDir     string
	backends     string
	shardTimeout time.Duration
}

// validate rejects option combinations at startup rather than letting
// them surface as runtime misbehavior. It returns the first problem
// found, phrased for the command line.
func validate(o *options) error {
	switch o.mode {
	case "serve", "shard", "router", "build-shards":
	default:
		return fmt.Errorf("-mode must be serve, shard, router or build-shards (got %q)", o.mode)
	}
	if o.maxBatch < 1 {
		return fmt.Errorf("-max-batch must be at least 1 (got %d)", o.maxBatch)
	}
	if o.joinCand < 1 {
		return fmt.Errorf("-join-max-candidates must be at least 1 (got %d)", o.joinCand)
	}
	if o.maxInflight < 1 {
		return fmt.Errorf("-max-inflight must be at least 1 (got %d)", o.maxInflight)
	}
	if o.queueDepth < -1 {
		return fmt.Errorf("-queue-depth must be -1 (no queue), 0 (default) or positive (got %d)", o.queueDepth)
	}
	if o.reqTimeout < 0 {
		return fmt.Errorf("-request-timeout must not be negative (got %v)", o.reqTimeout)
	}
	if o.drain < 0 {
		return fmt.Errorf("-shutdown-drain must not be negative (got %v)", o.drain)
	}
	if o.prewarmExact && o.mode != "serve" {
		return fmt.Errorf("-prewarm-exact only applies to -mode serve (got %q)", o.mode)
	}
	if o.indexFormat != query.FormatV1 && o.indexFormat != query.FormatV2 {
		return fmt.Errorf("-index-format must be %d or %d (got %d)", query.FormatV1, query.FormatV2, o.indexFormat)
	}
	if o.indexMmap {
		switch o.mode {
		case "serve":
			if o.indexPath == "" {
				return errors.New("-index-mmap needs -index (a file to map)")
			}
			if o.indexFormat != query.FormatV2 {
				return fmt.Errorf("-index-mmap requires -index-format %d (only format v2 files can be mapped)", query.FormatV2)
			}
		case "shard":
			if o.shardDir == "" {
				return errors.New("-index-mmap in shard mode needs -shard-dir (a built format-v2 manifest)")
			}
		default:
			return fmt.Errorf("-index-mmap only applies to -mode serve or shard (got %q: the router holds no index, build-shards chooses formats with -index-format)", o.mode)
		}
	}
	if o.buildBudget < 0 {
		return fmt.Errorf("-build-budget must not be negative (got %d)", o.buildBudget)
	}
	if o.buildBudget > 0 {
		if o.indexFormat != query.FormatV2 {
			return fmt.Errorf("-build-budget requires -index-format %d (the streaming builder writes format v2)", query.FormatV2)
		}
		switch o.mode {
		case "serve":
			if o.indexPath == "" {
				return errors.New("-build-budget needs -index (the streaming builder writes straight to a file)")
			}
		case "build-shards":
		default:
			return fmt.Errorf("-build-budget only applies to -mode serve or build-shards (got %q: shard and router modes never build index files)", o.mode)
		}
	}
	switch o.mode {
	case "build-shards":
		if o.shards < 1 {
			return fmt.Errorf("-mode build-shards needs -shards >= 1 (got %d)", o.shards)
		}
		if o.shardDir == "" {
			return errors.New("-mode build-shards needs -shard-dir")
		}
	case "shard":
		if o.shardDir == "" && o.shards < 1 {
			return errors.New("-mode shard needs -shard-dir (built manifest) or -shards (build in memory)")
		}
		if o.shardOrdinal < 0 {
			return fmt.Errorf("-shard-ordinal must not be negative (got %d)", o.shardOrdinal)
		}
		if o.shardDir == "" && o.shardOrdinal >= o.shards {
			return fmt.Errorf("-shard-ordinal %d out of range for -shards %d", o.shardOrdinal, o.shards)
		}
	case "router":
		if len(splitBackends(o.backends)) == 0 {
			return errors.New("-mode router needs -backends (comma-separated shard base URLs)")
		}
		if o.shardTimeout < 0 {
			return fmt.Errorf("-shard-timeout must not be negative (got %v)", o.shardTimeout)
		}
	}
	return nil
}

// splitBackends turns "-backends a,b,c" into trimmed non-empty URLs.
func splitBackends(s string) []string {
	var out []string
	for _, b := range strings.Split(s, ",") {
		if b = strings.TrimSpace(b); b != "" {
			out = append(out, b)
		}
	}
	return out
}

func main() {
	var o options
	flag.StringVar(&o.mode, "mode", "serve", "serve | shard | router | build-shards")
	flag.StringVar(&o.addr, "addr", ":8356", "listen address")
	flag.BoolVar(&o.version, "version", false, "print version and exit")
	flag.StringVar(&o.graphPath, "graph", "", "edge-list file to load")
	flag.StringVar(&o.genType, "gen", "", "generate instead of load: web | citation | coauthor | er | rmat")
	flag.IntVar(&o.n, "n", 1000, "generator: vertices")
	flag.IntVar(&o.d, "d", 8, "generator: average degree")
	flag.Int64Var(&o.seed, "seed", 1, "generator / index seed")
	flag.StringVar(&o.indexPath, "index", "", "walk-index file: loaded when present, else built and saved here")
	flag.BoolVar(&o.rebuild, "rebuild", false, "rebuild the index even if -index exists")
	flag.IntVar(&o.indexFormat, "index-format", query.FormatV2, "on-disk format written for -index and build-shards: 1 (dense) or 2 (compressed, mappable); loading negotiates from the file")
	flag.BoolVar(&o.indexMmap, "index-mmap", false, "serve/shard: page the walk index from its format-v2 file on demand (mmap-backed) instead of decoding it into memory")
	flag.Int64Var(&o.buildBudget, "build-budget", 0, "serve/build-shards: stream the index build to disk in slices of at most this many bytes of walk state, bounding builder memory (0 = materialize in memory); output is byte-identical")
	flag.Float64Var(&o.c, "c", 0.6, "damping factor C")
	flag.IntVar(&o.k, "k", 0, "walk horizon (0 = derive from -eps)")
	flag.Float64Var(&o.eps, "eps", 1e-3, "truncation target when -k is 0")
	flag.IntVar(&o.walks, "walks", 0, "walk fingerprints per vertex (0 = 100)")
	flag.IntVar(&o.workers, "workers", 0, "index build/update worker pool (0 = all CPUs, 1 = serial)")
	flag.IntVar(&o.cacheSize, "cache", 1024, "LRU query-cache entries (0 = disabled)")
	flag.BoolVar(&o.prewarm, "prewarm-updates", false, "build the update-tracking visit index at startup instead of on the first POST /v1/edges")
	flag.BoolVar(&o.prewarmExact, "prewarm-exact", false, "serve mode: run the linearized engine's diagonal solve at startup instead of on the first ?engine=linearized query")
	flag.IntVar(&o.maxBatch, "max-batch", simrankd.DefaultMaxBatch, "max sources per /v1/batch request")
	flag.IntVar(&o.joinCand, "join-max-candidates", query.DefaultMaxCandidates, "max candidate pairs a /v1/join may enumerate")
	flag.DurationVar(&o.reqTimeout, "request-timeout", 10*time.Second, "deadline per /v1 request, also the cap on ?timeout_ms= overrides (0 = none)")
	flag.IntVar(&o.maxInflight, "max-inflight", simrankd.DefaultMaxInflight(), "max /v1 requests executing concurrently")
	flag.IntVar(&o.queueDepth, "queue-depth", 0, "requests allowed to wait for an execution slot; beyond it 429 (0 = 2*max-inflight, -1 = no queue)")
	flag.DurationVar(&o.drain, "shutdown-drain", 10*time.Second, "time to drain in-flight requests on SIGINT/SIGTERM before cancelling them")
	flag.IntVar(&o.shards, "shards", 0, "build-shards: partition count; shard: fleet size when building in memory")
	flag.IntVar(&o.shardOrdinal, "shard-ordinal", 0, "shard: which manifest entry (or planned range) this process serves")
	flag.StringVar(&o.shardDir, "shard-dir", "", "shard directory: written by build-shards, read by shard mode")
	flag.StringVar(&o.backends, "backends", "", "router: comma-separated shard base URLs, one per vertex range")
	flag.DurationVar(&o.shardTimeout, "shard-timeout", simrankd.DefaultShardTimeout, "router: deadline per scatter leg to one shard")
	flag.Parse()

	if o.version {
		fmt.Printf("simrankd %s\n", simrankd.Version)
		return
	}
	if err := validate(&o); err != nil {
		fmt.Fprintf(os.Stderr, "simrankd: %v\n", err)
		os.Exit(1)
	}

	g, err := loadGraph(o.graphPath, o.genType, o.n, o.d, o.seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simrankd: %v\n", err)
		os.Exit(1)
	}
	log.Printf("graph: %s", graph.ComputeStats(g))
	opt := query.Options{
		C: o.c, K: o.k, Eps: o.eps, Walks: o.walks, Seed: o.seed, Workers: o.workers,
	}
	cfg := simrankd.Config{
		CacheSize:         o.cacheSize,
		Workers:           o.workers,
		MaxBatch:          o.maxBatch,
		JoinMaxCandidates: o.joinCand,
		MaxInflight:       o.maxInflight,
		QueueDepth:        o.queueDepth,
		RequestTimeout:    o.reqTimeout,
	}
	if o.cacheSize == 0 {
		cfg.CacheSize = -1 // flag 0 = off; Config uses negative for that
	}

	var handler http.Handler
	switch o.mode {
	case "build-shards":
		t0 := time.Now()
		var m *shard.Manifest
		if o.buildBudget > 0 {
			m, err = shard.BuildAllStreaming(g, opt, o.shardDir, o.shards, o.buildBudget)
		} else {
			m, err = shard.BuildAllFormat(g, opt, o.shardDir, o.shards, o.indexFormat)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "simrankd: %v\n", err)
			os.Exit(1)
		}
		log.Printf("shards: built %d format-v%d shards (n=%d walks=%d horizon=%d c=%g) into %s in %v",
			len(m.Shards), m.Format, m.N, m.Walks, m.K, m.C, o.shardDir, time.Since(t0))
		return

	case "shard":
		sh, err := openShard(g, &o, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simrankd: %v\n", err)
			os.Exit(1)
		}
		log.Printf("shard: range [%d,%d) of n=%d walks=%d horizon=%d c=%g (%d bytes, %s)",
			sh.Lo(), sh.Hi(), sh.N(), sh.Walks(), sh.Horizon(), sh.C(), sh.Bytes(), sh.Backend())
		if o.prewarm {
			t0 := time.Now()
			if err := sh.PrepareUpdates(o.workers); err != nil {
				fmt.Fprintf(os.Stderr, "simrankd: %v\n", err)
				os.Exit(1)
			}
			log.Printf("shard: update-tracking visit index built in %v", time.Since(t0))
		}
		ss, err := simrankd.NewShardServer(sh, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simrankd: %v\n", err)
			os.Exit(1)
		}
		handler = ss

	case "router":
		rt, err := simrankd.NewRouter(g, splitBackends(o.backends), simrankd.RouterConfig{
			Config: cfg, ShardTimeout: o.shardTimeout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "simrankd: %v\n", err)
			os.Exit(1)
		}
		log.Printf("router: fronting %d shards", len(splitBackends(o.backends)))
		handler = rt

	default: // serve
		idx, err := openIndex(g, &o, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simrankd: %v\n", err)
			os.Exit(1)
		}
		log.Printf("index: n=%d walks=%d horizon=%d c=%g (%d bytes, %s)",
			idx.N(), idx.Walks(), idx.Horizon(), idx.C(), idx.Bytes(), idx.Backend())
		if o.prewarm {
			t0 := time.Now()
			if err := idx.PrepareUpdates(o.workers); err != nil {
				fmt.Fprintf(os.Stderr, "simrankd: %v\n", err)
				os.Exit(1)
			}
			log.Printf("index: update-tracking visit index built in %v", time.Since(t0))
		}
		if o.prewarmExact {
			t0 := time.Now()
			if err := idx.PrepareExact(context.Background(), o.workers); err != nil {
				fmt.Fprintf(os.Stderr, "simrankd: %v\n", err)
				os.Exit(1)
			}
			st, _ := idx.ExactStats()
			log.Printf("index: linearized solver built in %v (%d sweeps, residual %.3g)",
				time.Since(t0), st.SolveIters, st.Residual)
		}
		handler = simrankd.NewServer(idx, cfg)
	}

	if err := run(handler, o.addr, o.drain); err != nil {
		fmt.Fprintf(os.Stderr, "simrankd: %v\n", err)
		os.Exit(1)
	}
}

// run serves handler on addr until SIGINT/SIGTERM, then drains in-flight
// requests for up to drain before cancelling their contexts.
func run(handler http.Handler, addr string, drain time.Duration) error {
	// baseCtx is the ancestor of every request context; cancelling it is
	// the lever that aborts requests still running when the graceful-drain
	// window closes.
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	srv := &http.Server{
		Addr:        addr,
		Handler:     handler,
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down (draining in-flight requests for up to %v)", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	if err == nil {
		return nil // drained clean
	}
	// The drain window closed with requests still running. Cancel their
	// contexts: queries abort at the next chunk boundary and NDJSON
	// streams write a terminal error line, after which a short second
	// Shutdown lets those responses reach the wire.
	log.Printf("drain deadline passed; cancelling in-flight requests")
	cancelBase()
	lastCtx, cancelLast := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancelLast()
	if err := srv.Shutdown(lastCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}

// openShard produces the shard this process serves: from a built shard
// directory when -shard-dir is given (checksums verified against the
// manifest), otherwise built in memory from the planned partition.
func openShard(g *graph.Graph, o *options, opt query.Options) (*shard.Shard, error) {
	if o.shardDir != "" {
		m, err := shard.LoadManifest(o.shardDir)
		if err != nil {
			return nil, err
		}
		if o.shardOrdinal >= len(m.Shards) {
			return nil, fmt.Errorf("-shard-ordinal %d out of range: manifest %s has %d shards",
				o.shardOrdinal, o.shardDir, len(m.Shards))
		}
		var sh *shard.Shard
		if o.indexMmap {
			sh, err = shard.OpenShardMapped(o.shardDir, m, o.shardOrdinal, query.MappedOptions{})
		} else {
			sh, err = shard.OpenShard(o.shardDir, m, o.shardOrdinal)
		}
		if err != nil {
			return nil, err
		}
		if err := sh.AttachGraph(g); err != nil {
			return nil, fmt.Errorf("shard %d of %s does not match the graph: %w", o.shardOrdinal, o.shardDir, err)
		}
		log.Printf("shard: loaded %s ordinal %d", o.shardDir, o.shardOrdinal)
		return sh, nil
	}
	ranges, err := shard.Plan(g.NumVertices(), o.shards)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	sh, err := shard.Build(g, opt, ranges[o.shardOrdinal].Lo, ranges[o.shardOrdinal].Hi)
	if err != nil {
		return nil, err
	}
	log.Printf("shard: built in %v", time.Since(t0))
	return sh, nil
}

// openIndex loads the walk index from path when possible, building (and,
// with a path, persisting, in -index-format) it otherwise. With
// -index-mmap a freshly built index is saved first and then reopened
// mapped, so serving always pages from the sealed file. A loaded index
// gets the graph re-attached so reranked top-k queries work.
func openIndex(g *graph.Graph, o *options, opt query.Options) (*query.Index, error) {
	path := o.indexPath
	load := func() (*query.Index, error) {
		if o.indexMmap {
			return query.LoadFileMapped(path, query.MappedOptions{})
		}
		return query.LoadFile(path)
	}
	if path != "" && !o.rebuild {
		idx, err := load()
		switch {
		case err == nil:
			if err := idx.AttachGraph(g); err != nil {
				return nil, fmt.Errorf("index %s does not match the graph: %w", path, err)
			}
			log.Printf("index: loaded %s (%s)", path, idx.Backend())
			if warn := paramMismatch(idx, opt); warn != "" {
				log.Printf("index: WARNING: loaded index disagrees with flags (%s); index-shaping flags are ignored for a loaded index — pass -rebuild to apply them", warn)
			}
			return idx, nil
		case errors.Is(err, os.ErrNotExist):
			// fall through to build
		default:
			return nil, fmt.Errorf("loading index %s: %w", path, err)
		}
	}
	t0 := time.Now()
	if o.buildBudget > 0 {
		// Out-of-core build: walks stream to the file in budget-sized
		// slices, then the sealed file is opened for serving — the dense
		// index never exists in memory.
		st, err := query.BuildFileStreaming(g, opt, path, o.buildBudget)
		if err != nil {
			return nil, err
		}
		log.Printf("index: stream-built %s in %v (%d slices of %d vertices, %d bytes)",
			path, time.Since(t0), st.Slices, st.SliceVertices, st.Bytes)
		idx, err := load()
		if err != nil {
			return nil, fmt.Errorf("opening stream-built index %s: %w", path, err)
		}
		if err := idx.AttachGraph(g); err != nil {
			return nil, fmt.Errorf("index %s does not match the graph: %w", path, err)
		}
		log.Printf("index: opened %s (%s)", path, idx.Backend())
		return idx, nil
	}
	idx, err := query.BuildIndex(g, opt)
	if err != nil {
		return nil, err
	}
	log.Printf("index: built in %v", time.Since(t0))
	if path != "" {
		if err := idx.SaveFileFormat(path, o.indexFormat); err != nil {
			return nil, fmt.Errorf("saving index %s: %w", path, err)
		}
		log.Printf("index: saved %s (format v%d)", path, o.indexFormat)
		if o.indexMmap {
			mapped, err := load()
			if err != nil {
				return nil, fmt.Errorf("reopening index %s mapped: %w", path, err)
			}
			if err := mapped.AttachGraph(g); err != nil {
				return nil, fmt.Errorf("index %s does not match the graph: %w", path, err)
			}
			log.Printf("index: reopened %s (%s)", path, mapped.Backend())
			return mapped, nil
		}
	}
	return idx, nil
}

// paramMismatch describes how a loaded index's parameters diverge from
// what the command line asked for, or "" when they agree. It resolves the
// same defaults BuildIndex would (walks 100, C 0.6); the eps-derived
// horizon is only compared when -k was given explicitly.
func paramMismatch(idx *query.Index, opt query.Options) string {
	var diffs []string
	if walks := cmp.Or(opt.Walks, 100); idx.Walks() != walks {
		diffs = append(diffs, fmt.Sprintf("walks %d vs -walks %d", idx.Walks(), walks))
	}
	if c := cmp.Or(opt.C, 0.6); idx.C() != c {
		diffs = append(diffs, fmt.Sprintf("c %g vs -c %g", idx.C(), c))
	}
	if opt.K > 0 && idx.Horizon() != opt.K {
		diffs = append(diffs, fmt.Sprintf("horizon %d vs -k %d", idx.Horizon(), opt.K))
	}
	if idx.Seed() != opt.Seed {
		diffs = append(diffs, fmt.Sprintf("seed %d vs -seed %d", idx.Seed(), opt.Seed))
	}
	return strings.Join(diffs, ", ")
}

func loadGraph(path, genType string, n, d int, seed int64) (*graph.Graph, error) {
	switch {
	case path != "" && genType != "":
		return nil, fmt.Errorf("use either -graph or -gen, not both")
	case path != "":
		return gio.LoadEdgeListFile(path)
	case genType != "":
		switch genType {
		case "web":
			return gen.WebGraph(n, d, seed), nil
		case "citation":
			return gen.CitationGraph(n, d, seed), nil
		case "coauthor":
			return gen.CoauthorGraph(n, d, seed), nil
		case "er":
			return gen.ErdosRenyi(n, n*d, seed), nil
		case "rmat":
			return gen.RMAT(n, n*d, gen.DefaultRMAT, seed), nil
		default:
			return nil, fmt.Errorf("unknown generator %q", genType)
		}
	default:
		return nil, fmt.Errorf("provide -graph FILE or -gen TYPE")
	}
}
