package walkindex

import (
	"bytes"
	"testing"

	"oipsr/graph"
)

// fuzzSeedIndex returns the serialized bytes of a small valid index, the
// structured seed every mutation starts from.
func fuzzSeedIndex(f *testing.F) []byte {
	f.Helper()
	g := graph.MustFromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 1}, {4, 2}, {5, 4}})
	ix, err := Build(g, Options{C: 0.6, K: 4, Walks: 3, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoad: Load must return an error — never panic, never allocate
// proportionally to a forged header — on arbitrary bytes. Anything it does
// accept must round-trip through Save bit-identically.
func FuzzLoad(f *testing.F) {
	valid := fuzzSeedIndex(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])        // truncated payload
	f.Add(valid[:headerSize])          // header only
	f.Add([]byte{})                    // empty
	f.Add([]byte("SRWKIDX\x00junk"))   // magic, garbage after
	f.Add(bytes.Repeat([]byte{0}, 64)) // zeros
	corrupt := append([]byte(nil), valid...)
	corrupt[headerSize+3] ^= 0x20 // payload bit flip -> checksum mismatch
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			t.Fatalf("re-saving accepted index: %v", err)
		}
		// Load is a stream reader: it consumes exactly one index and
		// ignores trailing bytes, so the round-trip invariant is on the
		// consumed prefix.
		out := buf.Bytes()
		if len(data) < len(out) || !bytes.Equal(out, data[:len(out)]) {
			t.Fatal("accepted index did not round-trip bit-identically")
		}
	})
}
