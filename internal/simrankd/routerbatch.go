package simrankd

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"oipsr/internal/walkindex"
	"oipsr/simrank/query"
)

// Router batch + join: the scatter/gather versions of /v1/batch and
// /v1/join. Request validation, cache-key sharing with the single
// endpoints, NDJSON line semantics, and the degraded/truncated markers
// all mirror the single-node daemon (batch.go) — a client cannot tell a
// router from a single node by the bytes of a healthy response.

// handleBatch serves POST /v1/batch at the router: the single-node
// contract (one NDJSON line per source, items failing independently),
// with each chunk's dense rows assembled by one scatter to every shard.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	rt.reqBatch.Add(1)
	if !rt.checkMethod(w, r, http.MethodPost) {
		return
	}
	if !rt.requireWalkEngine(w, r) {
		return
	}
	var req batchRequest
	if !rt.decodeJSONBody(w, r, &req) {
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = "topk"
	}
	switch mode {
	case "topk":
		if req.Min != nil {
			rt.writeError(w, http.StatusBadRequest, "\"min\" is only valid in single_source mode")
			return
		}
		if req.K == 0 {
			req.K = 10
		}
		if req.K < 1 {
			rt.writeError(w, http.StatusBadRequest, "top-k size %d < 1", req.K)
			return
		}
	case "single_source":
		if req.K != 0 || req.Rerank {
			rt.writeError(w, http.StatusBadRequest, "\"k\" and \"rerank\" are only valid in topk mode")
			return
		}
	default:
		rt.writeError(w, http.StatusBadRequest, "unknown mode %q (want \"topk\" or \"single_source\")", mode)
		return
	}
	if len(req.Sources) > rt.maxBatch {
		rt.writeError(w, http.StatusBadRequest, "batch of %d sources exceeds the %d limit", len(req.Sources), rt.maxBatch)
		return
	}
	if mode == "single_source" && req.Min == nil {
		if int64(len(req.Sources))*int64(rt.n) > maxDenseBatchScores {
			rt.writeError(w, http.StatusBadRequest,
				"dense batch of %d sources on %d vertices exceeds %d total scores; pass \"min\" or split the batch",
				len(req.Sources), rt.n, maxDenseBatchScores)
			return
		}
	}
	rt.batchItems.Add(int64(len(req.Sources)))

	lines, itemErrors, degraded, err := rt.computeBatchLines(r.Context(), &req, mode)
	if err != nil {
		rt.writeQueryError(w, err, http.StatusInternalServerError)
		return
	}
	rt.batchItemErrors.Add(itemErrors)
	if degraded {
		rt.degradedTotal.Add(1)
		w.Header().Set("X-Simrank-Degraded", "true")
	}
	rt.streamNDJSON(w, r, lines)
}

// computeBatchLines is the router's version of the single-node
// computeBatchLines: per-item validation and cache lookups under the
// generation-vector tag, one scatter per chunk for the misses, cache
// fills only for chunks merged complete and fresh.
func (rt *Router) computeBatchLines(ctx context.Context, req *batchRequest, mode string) (lines [][]byte, itemErrors int64, degraded bool, err error) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()

	tag := rt.genTagLocked()
	sparse := req.Min != nil
	var minVal float64
	if sparse {
		minVal = *req.Min
	}

	lines = make([][]byte, len(req.Sources))
	missSlot := make(map[int]int)
	var miss []int
	for i, q := range req.Sources {
		if q < 0 || q >= rt.n {
			line, merr := rt.marshalBody(batchItemError{Source: q, Error: fmt.Sprintf("query: vertex %d out of range [0,%d)", q, rt.n)})
			if merr != nil {
				return nil, 0, false, merr
			}
			lines[i] = line
			itemErrors++
			continue
		}
		var key string
		cacheable := mode == "topk" || sparse
		if cacheable {
			if mode == "topk" {
				key = rtTopKKey(tag, q, req.K, req.Rerank)
			} else {
				key = rtSSKey(tag, q, minVal)
			}
			if body, ok := rt.cache.Get(key); ok {
				lines[i] = body
				continue
			}
		}
		if _, ok := missSlot[q]; !ok {
			missSlot[q] = len(miss)
			miss = append(miss, q)
		}
	}
	if len(miss) == 0 {
		return lines, itemErrors, false, nil
	}

	kEff := req.K
	if kEff > rt.n-1 {
		kEff = rt.n - 1
	}
	bodies := make([][]byte, len(miss))
	chunk := batchChunk(rt.n)
	for lo := 0; lo < len(miss); lo += chunk {
		hi := min(lo+chunk, len(miss))
		rows := make([][]float64, hi-lo)
		for j := range rows {
			rows[j] = make([]float64, rt.n)
		}
		shardDegraded, serr := rt.scatterScores(ctx, miss[lo:hi], rows)
		if serr != nil {
			return nil, 0, false, serr
		}
		switch mode {
		case "topk":
			// The same per-chunk degrade decision as the single node, with
			// the extra cause a single node cannot have: a shard-incomplete
			// row disables the exact rerank outright (exact scores over an
			// incomplete merge would be wrong confidently).
			useRerank := req.Rerank && !shardDegraded
			pool := query.RerankPool(rt.n, req.K, 0)
			chunkDegraded := shardDegraded || (useRerank && rt.shouldDegrade(ctx, pool*(hi-lo)))
			if chunkDegraded {
				useRerank = false
			}
			t1 := time.Now()
			for j, q := range miss[lo:hi] {
				results, berr := query.RankScores(ctx, rt.g, rt.c, rt.horizon, rows[j], q, kEff, &query.TopKOptions{Rerank: useRerank})
				if berr != nil {
					return nil, 0, false, berr
				}
				body, berr := rt.topKBody(q, req.K, useRerank, chunkDegraded, results)
				if berr != nil {
					return nil, 0, false, berr
				}
				bodies[lo+j] = body
				if !chunkDegraded {
					rt.cache.Put(rtTopKKey(tag, q, req.K, req.Rerank), body)
				}
			}
			if useRerank {
				rt.observeRerank(time.Since(t1), pool*(hi-lo))
			}
			degraded = degraded || chunkDegraded
		case "single_source":
			for j, q := range miss[lo:hi] {
				body, berr := rt.singleSourceBody(q, rows[j], sparse, minVal, shardDegraded)
				if berr != nil {
					return nil, 0, false, berr
				}
				bodies[lo+j] = body
				if sparse && !shardDegraded {
					rt.cache.Put(rtSSKey(tag, q, minVal), body)
				}
			}
			degraded = degraded || shardDegraded
		}
	}
	for i, q := range req.Sources {
		if lines[i] == nil {
			lines[i] = bodies[missSlot[q]]
		}
	}
	return lines, itemErrors, degraded, nil
}

// handleJoin serves POST /v1/join at the router. The join shards along
// the fingerprint axis: backend i enumerates the co-located candidate
// pairs of fp range i, the router unions them (per-shard sets are subsets
// of the distinct union, so the candidate cap keeps single-node
// semantics), pair scoring scatters to the owner of each pair's first
// vertex, and the shared FinishJoin tail ranks the gathered pairs — all
// merging is set union and sorting, no float arithmetic, so healthy
// responses are byte-identical to the single-node daemon's.
func (rt *Router) handleJoin(w http.ResponseWriter, r *http.Request) {
	rt.reqJoin.Add(1)
	if !rt.checkMethod(w, r, http.MethodPost) {
		return
	}
	if !rt.requireWalkEngine(w, r) {
		return
	}
	var req joinRequest
	if !rt.decodeJSONBody(w, r, &req) {
		return
	}
	if req.K == 0 {
		req.K = 10
	}
	maxCand := req.MaxCandidates
	if maxCand <= 0 || maxCand > rt.joinMaxCand {
		maxCand = rt.joinMaxCand
	}

	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if err := walkindex.CheckJoinArgs(req.K, req.Threshold, maxCand); err != nil {
		rt.writeQueryError(w, err, http.StatusBadRequest)
		return
	}
	key := rtJoinKey(rt.genTagLocked(), req.K, req.Threshold, maxCand)
	if body, ok := rt.cache.Get(key); ok {
		writeJSONBytes(w, body)
		return
	}

	pairs, degraded, err := rt.gatherJoin(r.Context(), req.Threshold, maxCand)
	if err != nil {
		var se *shardHTTPError
		if errors.As(err, &se) {
			// A deterministic client-level rejection from a backend (e.g.
			// too-dense): the same bytes a single node would answer with.
			rt.writeError(w, se.status, "%s", se.msg)
			return
		}
		rt.writeQueryError(w, err, http.StatusBadRequest)
		return
	}

	res := walkindex.FinishJoin(pairs, req.K, req.Threshold)
	out := make([]query.JoinPair, len(res))
	for i, p := range res {
		out[i] = query.JoinPair{A: p.A, B: p.B, Score: p.Score}
	}
	body, err := rt.marshalBody(joinResponse{K: req.K, Threshold: req.Threshold, Pairs: out, Degraded: degraded})
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	if degraded {
		rt.degradedTotal.Add(1)
		w.Header().Set("X-Simrank-Degraded", "true")
	} else if len(body) <= maxCachedJoinBody {
		rt.cache.Put(key, body)
	}
	writeJSONBytes(w, body)
}

// gatherJoin runs the two scatter phases of a join: candidate enumeration
// over the fingerprint ranges, then exact scoring at each pair's owner.
// A backend 400 (too-dense, bad args) aborts with the backend's error; a
// failed or stale leg drops its candidates or scores and degrades the
// answer instead. Callers hold mu.RLock.
func (rt *Router) gatherJoin(ctx context.Context, threshold float64, maxCand int) ([]walkindex.JoinPair, bool, error) {
	type candRes struct {
		pairs [][2]int
		stale bool
		err   error
	}
	cands := make([]candRes, len(rt.backends))
	var wg sync.WaitGroup
	for i := range rt.backends {
		if rt.fpRanges[i].Hi <= rt.fpRanges[i].Lo {
			continue // more backends than fingerprints: empty fp range
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp shardJoinCandResponse
			err := rt.postShard(ctx, rt.backends[i], "/shard/v1/join_candidates", shardJoinCandRequest{
				Threshold:     threshold,
				FpLo:          rt.fpRanges[i].Lo,
				FpHi:          rt.fpRanges[i].Hi,
				MaxCandidates: maxCand,
			}, &resp)
			if err != nil {
				cands[i].err = err
				return
			}
			cands[i].pairs = resp.Pairs
			cands[i].stale = resp.Generation != rt.gens[i]
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}

	degraded := false
	union := make(map[uint64]struct{})
	for i := range cands {
		c := &cands[i]
		if c.err != nil {
			var se *shardHTTPError
			if errors.As(c.err, &se) && se.status == http.StatusBadRequest {
				// Deterministic rejection: every leg would answer it the
				// same way, so it is the request's answer, not a degradation.
				return nil, false, c.err
			}
			rt.shardErrors.Add(1)
			degraded = true
			continue
		}
		if c.stale {
			degraded = true
		}
		for _, p := range c.pairs {
			union[uint64(p[0])<<32|uint64(p[1])] = struct{}{}
		}
	}
	if len(union) > maxCand {
		return nil, false, walkindex.TooDenseError(threshold, maxCand)
	}

	// Scatter scoring to the owner of each pair's first vertex.
	byOwner := make([][][2]int, len(rt.backends))
	for key := range union {
		a, b := int(key>>32), int(key&0xFFFFFFFF)
		o := rt.ownerOf(a)
		byOwner[o] = append(byOwner[o], [2]int{a, b})
	}
	type scoreRes struct {
		pairs []wireJoinPair
		stale bool
		err   error
	}
	scores := make([]scoreRes, len(rt.backends))
	for i := range rt.backends {
		if len(byOwner[i]) == 0 {
			continue
		}
		// Deterministic request payloads (scores are order-independent,
		// but tidy wire traffic is easier to debug and test).
		sort.Slice(byOwner[i], func(x, y int) bool {
			if byOwner[i][x][0] != byOwner[i][y][0] {
				return byOwner[i][x][0] < byOwner[i][y][0]
			}
			return byOwner[i][x][1] < byOwner[i][y][1]
		})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp shardJoinScoreResponse
			err := rt.postShard(ctx, rt.backends[i], "/shard/v1/join_score", shardJoinScoreRequest{Pairs: byOwner[i]}, &resp)
			if err != nil {
				scores[i].err = err
				return
			}
			scores[i].pairs = resp.Pairs
			scores[i].stale = resp.Generation != rt.gens[i]
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}

	var all []walkindex.JoinPair
	for i := range scores {
		s := &scores[i]
		if len(byOwner[i]) == 0 {
			continue
		}
		if s.err != nil {
			rt.shardErrors.Add(1)
			degraded = true
			continue
		}
		if s.stale {
			degraded = true
		}
		for _, p := range s.pairs {
			all = append(all, walkindex.JoinPair{A: p.A, B: p.B, Score: p.Score})
		}
	}
	return all, degraded, nil
}

// ownerOf returns the index of the backend owning vertex v's walk rows.
func (rt *Router) ownerOf(v int) int {
	return sort.Search(len(rt.ranges), func(i int) bool { return rt.ranges[i].Hi > v })
}
