// Command simrankd serves single-source and top-k SimRank queries over
// HTTP from a persistent walk index (see oipsr/simrank/query).
//
// At startup the daemon loads the graph (edge-list file or generator),
// then loads the walk index from -index if the file exists, or builds it
// and — when -index is given — saves it for the next start. Queries are
// answered from the index alone; an LRU cache memoizes hot responses.
//
//	simrankd -gen web -n 5000 -d 11 -addr :8356
//	simrankd -graph web.txt -index web.idx -walks 200 -addr :8356
//
// Endpoints:
//
//	GET  /v1/single_source?q=17           dense score vector for vertex 17
//	GET  /v1/single_source?q=17&min=0.01  only entries with score >= 0.01
//	GET  /v1/topk?q=17&k=10               top-10 by index estimate
//	GET  /v1/topk?q=17&k=10&rerank=1      top-10 after exact reranking
//	POST /v1/batch                        many sources, one shared traversal (NDJSON)
//	POST /v1/join                         all-pairs top-k similarity join
//	POST /v1/edges                        batch edge adds/removes, applied live
//	GET  /healthz                         liveness + index parameters
//	GET  /metrics                         Prometheus-style counters
//
// /v1/batch takes {"mode":"topk","sources":[17,42],"k":10} (or
// {"mode":"single_source","sources":[...],"min":0.01}) and streams one
// NDJSON line per source, in request order, each byte-identical to the
// corresponding single-endpoint response; invalid sources produce error
// lines without failing the rest of the batch. The whole batch is answered
// by one shared traversal of the walk index, so per-source cost shrinks as
// the batch grows. /v1/join takes {"k":50,"threshold":0.1} and returns the
// k highest-scoring vertex pairs at or above the threshold. See
// docs/API.md for the full reference.
//
// /v1/edges takes {"edits":[{"op":"add","u":0,"v":1},{"op":"remove",...}]}
// and repairs the walk index incrementally — only walks through vertices
// whose in-neighbor list changed are recomputed, and the repaired index is
// bit-identical to a full rebuild on the edited graph. Queries keep being
// served concurrently (updates take the write side of an RWMutex) and the
// response cache is invalidated atomically by folding the index generation
// into cache keys.
//
// Overload behavior: every /v1 request runs under -request-timeout
// (shortened per request via ?timeout_ms=, never extended); at most
// -max-inflight requests execute concurrently with a wait queue of
// -queue-depth behind them, beyond which requests are shed with 429 +
// Retry-After; reranked top-k requests whose remaining deadline cannot
// afford the exact rerank are served raw walk estimates marked degraded.
// See oipsr/internal/simrankd for the mechanics and docs/API.md for the
// client-visible semantics.
//
// The process shuts down gracefully on SIGINT/SIGTERM: it stops accepting
// connections and drains in-flight requests for -shutdown-drain; requests
// still running then have their contexts cancelled, which ends NDJSON
// streams with a terminal error line, and the server exits.
package main

import (
	"cmp"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"oipsr/graph"
	"oipsr/graph/gen"
	"oipsr/graph/gio"
	"oipsr/internal/simrankd"
	"oipsr/simrank/query"
)

func main() {
	var (
		addr      = flag.String("addr", ":8356", "listen address")
		graphPath = flag.String("graph", "", "edge-list file to load")
		genType   = flag.String("gen", "", "generate instead of load: web | citation | coauthor | er | rmat")
		n         = flag.Int("n", 1000, "generator: vertices")
		d         = flag.Int("d", 8, "generator: average degree")
		seed      = flag.Int64("seed", 1, "generator / index seed")
		indexPath = flag.String("index", "", "walk-index file: loaded when present, else built and saved here")
		rebuild   = flag.Bool("rebuild", false, "rebuild the index even if -index exists")
		c         = flag.Float64("c", 0.6, "damping factor C")
		k         = flag.Int("k", 0, "walk horizon (0 = derive from -eps)")
		eps       = flag.Float64("eps", 1e-3, "truncation target when -k is 0")
		walks     = flag.Int("walks", 0, "walk fingerprints per vertex (0 = 100)")
		workers   = flag.Int("workers", 0, "index build/update worker pool (0 = all CPUs, 1 = serial)")
		cacheSize = flag.Int("cache", 1024, "LRU query-cache entries (0 = disabled)")
		prewarm   = flag.Bool("prewarm-updates", false, "build the update-tracking visit index at startup instead of on the first POST /v1/edges")
		maxBatch  = flag.Int("max-batch", simrankd.DefaultMaxBatch, "max sources per /v1/batch request")
		joinCand  = flag.Int("join-max-candidates", query.DefaultMaxCandidates, "max candidate pairs a /v1/join may enumerate")

		reqTimeout  = flag.Duration("request-timeout", 10*time.Second, "deadline per /v1 request, also the cap on ?timeout_ms= overrides (0 = none)")
		maxInflight = flag.Int("max-inflight", simrankd.DefaultMaxInflight(), "max /v1 requests executing concurrently")
		queueDepth  = flag.Int("queue-depth", 0, "requests allowed to wait for an execution slot; beyond it 429 (0 = 2*max-inflight, negative = no queue)")
		drain       = flag.Duration("shutdown-drain", 10*time.Second, "time to drain in-flight requests on SIGINT/SIGTERM before cancelling them")
	)
	flag.Parse()

	g, err := loadGraph(*graphPath, *genType, *n, *d, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simrankd: %v\n", err)
		os.Exit(1)
	}
	log.Printf("graph: %s", graph.ComputeStats(g))

	idx, err := openIndex(g, *indexPath, *rebuild, query.Options{
		C: *c, K: *k, Eps: *eps, Walks: *walks, Seed: *seed, Workers: *workers,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "simrankd: %v\n", err)
		os.Exit(1)
	}
	log.Printf("index: n=%d walks=%d horizon=%d c=%g (%d bytes)",
		idx.N(), idx.Walks(), idx.Horizon(), idx.C(), idx.Bytes())
	if *prewarm {
		t0 := time.Now()
		if err := idx.PrepareUpdates(*workers); err != nil {
			fmt.Fprintf(os.Stderr, "simrankd: %v\n", err)
			os.Exit(1)
		}
		log.Printf("index: update-tracking visit index built in %v", time.Since(t0))
	}

	if *maxBatch < 1 || *joinCand < 1 {
		fmt.Fprintln(os.Stderr, "simrankd: -max-batch and -join-max-candidates must be at least 1")
		os.Exit(1)
	}
	if *maxInflight < 1 {
		fmt.Fprintln(os.Stderr, "simrankd: -max-inflight must be at least 1")
		os.Exit(1)
	}
	cacheCfg := *cacheSize
	if cacheCfg == 0 {
		cacheCfg = -1 // flag 0 = off; Config uses negative for that
	}
	handler := simrankd.NewServer(idx, simrankd.Config{
		CacheSize:         cacheCfg,
		Workers:           *workers,
		MaxBatch:          *maxBatch,
		JoinMaxCandidates: *joinCand,
		MaxInflight:       *maxInflight,
		QueueDepth:        *queueDepth,
		RequestTimeout:    *reqTimeout,
	})
	// baseCtx is the ancestor of every request context; cancelling it is
	// the lever that aborts requests still running when the graceful-drain
	// window closes.
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	srv := &http.Server{
		Addr:        *addr,
		Handler:     handler,
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "simrankd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	log.Printf("shutting down (draining in-flight requests for up to %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err = srv.Shutdown(shutdownCtx)
	if err == nil {
		return // drained clean
	}
	// The drain window closed with requests still running. Cancel their
	// contexts: queries abort at the next chunk boundary and NDJSON
	// streams write a terminal error line, after which a short second
	// Shutdown lets those responses reach the wire.
	log.Printf("drain deadline passed; cancelling in-flight requests")
	cancelBase()
	lastCtx, cancelLast := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancelLast()
	if err := srv.Shutdown(lastCtx); err != nil {
		fmt.Fprintf(os.Stderr, "simrankd: shutdown: %v\n", err)
		os.Exit(1)
	}
}

// openIndex loads the walk index from path when possible, building (and,
// with a path, persisting) it otherwise. A loaded index gets the graph
// re-attached so reranked top-k queries work.
func openIndex(g *graph.Graph, path string, rebuild bool, opt query.Options) (*query.Index, error) {
	if path != "" && !rebuild {
		idx, err := query.LoadFile(path)
		switch {
		case err == nil:
			if err := idx.AttachGraph(g); err != nil {
				return nil, fmt.Errorf("index %s does not match the graph: %w", path, err)
			}
			log.Printf("index: loaded %s", path)
			if warn := paramMismatch(idx, opt); warn != "" {
				log.Printf("index: WARNING: loaded index disagrees with flags (%s); index-shaping flags are ignored for a loaded index — pass -rebuild to apply them", warn)
			}
			return idx, nil
		case errors.Is(err, os.ErrNotExist):
			// fall through to build
		default:
			return nil, fmt.Errorf("loading index %s: %w", path, err)
		}
	}
	t0 := time.Now()
	idx, err := query.BuildIndex(g, opt)
	if err != nil {
		return nil, err
	}
	log.Printf("index: built in %v", time.Since(t0))
	if path != "" {
		if err := idx.SaveFile(path); err != nil {
			return nil, fmt.Errorf("saving index %s: %w", path, err)
		}
		log.Printf("index: saved %s", path)
	}
	return idx, nil
}

// paramMismatch describes how a loaded index's parameters diverge from
// what the command line asked for, or "" when they agree. It resolves the
// same defaults BuildIndex would (walks 100, C 0.6); the eps-derived
// horizon is only compared when -k was given explicitly.
func paramMismatch(idx *query.Index, opt query.Options) string {
	var diffs []string
	if walks := cmp.Or(opt.Walks, 100); idx.Walks() != walks {
		diffs = append(diffs, fmt.Sprintf("walks %d vs -walks %d", idx.Walks(), walks))
	}
	if c := cmp.Or(opt.C, 0.6); idx.C() != c {
		diffs = append(diffs, fmt.Sprintf("c %g vs -c %g", idx.C(), c))
	}
	if opt.K > 0 && idx.Horizon() != opt.K {
		diffs = append(diffs, fmt.Sprintf("horizon %d vs -k %d", idx.Horizon(), opt.K))
	}
	if idx.Seed() != opt.Seed {
		diffs = append(diffs, fmt.Sprintf("seed %d vs -seed %d", idx.Seed(), opt.Seed))
	}
	return strings.Join(diffs, ", ")
}

func loadGraph(path, genType string, n, d int, seed int64) (*graph.Graph, error) {
	switch {
	case path != "" && genType != "":
		return nil, fmt.Errorf("use either -graph or -gen, not both")
	case path != "":
		return gio.LoadEdgeListFile(path)
	case genType != "":
		switch genType {
		case "web":
			return gen.WebGraph(n, d, seed), nil
		case "citation":
			return gen.CitationGraph(n, d, seed), nil
		case "coauthor":
			return gen.CoauthorGraph(n, d, seed), nil
		case "er":
			return gen.ErdosRenyi(n, n*d, seed), nil
		case "rmat":
			return gen.RMAT(n, n*d, gen.DefaultRMAT, seed), nil
		default:
			return nil, fmt.Errorf("unknown generator %q", genType)
		}
	default:
		return nil, fmt.Errorf("provide -graph FILE or -gen TYPE")
	}
}
