package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"oipsr/graph/gen"
	"oipsr/internal/simrankd"
	"oipsr/simrank/query"
)

// runServeWorkload drives simrankd through its admission control with a
// closed-loop load generator: a fixed set of workers each keeps exactly one
// request outstanding, so offered load tracks concurrency directly and the
// limiter's behavior — queueing, shedding, degradation — is what varies
// between levels. The server runs in-process (httptest over the same
// simrankd.Server cmd/simrankd serves), so latencies include the full HTTP
// stack but no real network, and allocation counts cover client and server
// together.
//
// Each level mixes the three request families the daemon serves
// (single_source, topk with and without rerank, NDJSON batch) and reports
// p50/p99/p999 latency, throughput, shed rate, degraded rate, and
// allocations per request.
//
// The run doubles as a regression gate: at concurrency 1 against idle
// capacity nothing may shed or degrade, and under deliberate overload the
// server must answer every request with 200, 429, or 503 — never a blind
// 5xx or a hung connection. Violations exit non-zero, which is what the CI
// smoke (bench -quick serve) relies on.
func runServeWorkload(cfg config) {
	header("Serving under load: admission control & shedding", "simrankd overload")

	const (
		maxInflight = 2
		queueDepth  = 2
		walks       = 100
	)
	levelDuration := 2 * time.Second / time.Duration(cfg.scale)
	if levelDuration < 200*time.Millisecond {
		levelDuration = 200 * time.Millisecond
	}

	g := gen.WebGraph(300, 8, cfg.seed)
	idx, err := query.BuildIndex(g, query.Options{Walks: walks, Seed: cfg.seed, Workers: benchWorkers})
	must(err)
	// At least two pool workers even on a single-CPU box: a serial server
	// never blocks mid-handler, so on GOMAXPROCS=1 handler goroutines
	// would run back-to-back and the limiter would never see two requests
	// contending — overload would be invisible by scheduling accident.
	serveWorkers := benchWorkers
	if serveWorkers < 2 {
		serveWorkers = 2
	}
	// The response cache is off: every request must compute, which is the
	// regime admission control exists for. With the LRU on, the whole 300-
	// vertex key space goes hot within the first level and the remaining
	// levels would measure cache lookups, not serving.
	srv := simrankd.NewServer(idx, simrankd.Config{
		CacheSize:      -1,
		Workers:        serveWorkers,
		MaxInflight:    maxInflight,
		QueueDepth:     queueDepth,
		RequestTimeout: 2 * time.Second,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	fmt.Printf("n=%d, walks=%d, max-inflight=%d, queue-depth=%d, %v per level\n\n",
		g.NumVertices(), walks, maxInflight, queueDepth, levelDuration)
	fmt.Printf("%11s | %8s %9s | %9s %9s %9s | %6s %6s %6s | %9s\n",
		"concurrency", "requests", "thru/s", "p50", "p99", "p999", "shed%", "degr%", "err", "allocs/rq")

	// Concurrency 1 can never saturate two slots; 4 fills slots+queue
	// exactly; 64 is sustained overload where shedding engages.
	for _, concurrency := range []int{1, maxInflight + queueDepth, 32 * maxInflight} {
		st := serveLevel(ts, concurrency, levelDuration)

		shedPct := 100 * float64(st.shed) / float64(max(st.requests, 1))
		degrPct := 100 * float64(st.degraded) / float64(max(st.requests, 1))
		thru := float64(st.requests-st.shed) / st.elapsed.Seconds()
		fmt.Printf("%11d | %8d %9.0f | %9v %9v %9v | %6.1f %6.1f %6d | %9.0f\n",
			concurrency, st.requests, thru,
			st.p50.Round(time.Microsecond), st.p99.Round(time.Microsecond), st.p999.Round(time.Microsecond),
			shedPct, degrPct, st.errors, st.allocsPerReq)

		emitJSON("serve", map[string]any{
			"concurrency":     concurrency,
			"max_inflight":    maxInflight,
			"queue_depth":     queueDepth,
			"n":               g.NumVertices(),
			"walks":           walks,
			"duration":        seconds(st.elapsed),
			"requests":        st.requests,
			"shed":            st.shed,
			"degraded":        st.degraded,
			"errors":          st.errors,
			"throughput_rps":  thru,
			"p50_seconds":     seconds(st.p50),
			"p99_seconds":     seconds(st.p99),
			"p999_seconds":    seconds(st.p999),
			"allocs_per_req":  st.allocsPerReq,
			"shed_percent":    shedPct,
			"degrade_percent": degrPct,
		})

		// Built-in invariants: an unloaded server must serve everything
		// exactly, and an overloaded one must fail fast and cleanly.
		if st.errors > 0 {
			fmt.Fprintf(os.Stderr, "serve: %d responses outside {200, 429, 503} at concurrency %d\n", st.errors, concurrency)
			os.Exit(1)
		}
		if concurrency == 1 && (st.shed != 0 || st.degraded != 0) {
			fmt.Fprintf(os.Stderr, "serve: shed=%d degraded=%d at concurrency 1 — an idle server must not refuse work\n", st.shed, st.degraded)
			os.Exit(1)
		}
	}
	fmt.Println("\n(closed loop: each worker keeps one request outstanding. thru/s excludes")
	fmt.Println(" shed requests; allocs/rq counts client+server since both run in-process.)")
}

// serveStats aggregates one load level.
type serveStats struct {
	requests     int
	shed         int // 429
	degraded     int // X-Simrank-Degraded on a 200
	errors       int // anything outside {200, 429, 503}
	elapsed      time.Duration
	p50          time.Duration
	p99          time.Duration
	p999         time.Duration
	allocsPerReq float64
}

// serveLevel runs `concurrency` closed-loop workers against ts for roughly
// d and aggregates their per-request measurements.
func serveLevel(ts *httptest.Server, concurrency int, d time.Duration) serveStats {
	type workerStats struct {
		durs     []time.Duration
		shed     int
		degraded int
		errors   int
	}
	perWorker := make([]workerStats, concurrency)
	// One persistent connection per worker. The default transport keeps
	// only two idle connections per host, so a larger fleet would open a
	// fresh TCP connection per request and the single accept loop would
	// serialize the offered load — the limiter would never see the
	// concurrency the workers think they are generating.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        concurrency,
		MaxIdleConnsPerHost: concurrency,
	}}
	defer client.CloseIdleConnections()

	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	deadline := t0.Add(d)

	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &perWorker[w]
			for i := 0; time.Now().Before(deadline); i++ {
				url, body := serveRequest(ts.URL, w, i)
				r0 := time.Now()
				var resp *http.Response
				var err error
				if body == "" {
					resp, err = client.Get(url)
				} else {
					resp, err = client.Post(url, "application/json", strings.NewReader(body))
				}
				if err != nil {
					st.errors++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				st.durs = append(st.durs, time.Since(r0))
				switch resp.StatusCode {
				case http.StatusOK:
					if resp.Header.Get("X-Simrank-Degraded") == "true" {
						st.degraded++
					}
				case http.StatusTooManyRequests:
					st.shed++
					// A closed loop that hammers a shedding server in a
					// microsecond-tight spin measures the client's syscall
					// rate, not the server; back off like a real client.
					time.Sleep(time.Millisecond)
				case http.StatusServiceUnavailable:
					// deadline while queued: correct overload behavior
				default:
					st.errors++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)

	var out serveStats
	out.elapsed = elapsed
	var durs []time.Duration
	for i := range perWorker {
		st := &perWorker[i]
		out.requests += len(st.durs)
		out.shed += st.shed
		out.degraded += st.degraded
		out.errors += st.errors
		durs = append(durs, st.durs...)
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	out.p50 = percentile(durs, 50)
	out.p99 = percentile(durs, 99)
	out.p999 = percentileMille(durs, 999)
	if out.requests > 0 {
		out.allocsPerReq = float64(ms1.Mallocs-ms0.Mallocs) / float64(out.requests)
	}
	return out
}

// serveRequest picks the i-th request for worker w from the serving mix:
// half single-source sweeps, a quarter plain top-k, an eighth reranked
// top-k, an eighth 32-source batches. The batches are the heavy tail —
// each occupies an execution slot for milliseconds while the point queries
// take microseconds — which is what makes the queue back up and shedding
// engage under overload, mirroring production mixes where bulk and
// interactive traffic share one server. Returns (url, "") for GETs and
// (url, body) for POSTs.
func serveRequest(base string, w, i int) (string, string) {
	q := (w*131 + i*17) % 300
	switch i % 8 {
	case 0, 1, 2, 3:
		return fmt.Sprintf("%s/v1/single_source?q=%d", base, q), ""
	case 4, 5:
		return fmt.Sprintf("%s/v1/topk?q=%d&k=10", base, q), ""
	case 6:
		return fmt.Sprintf("%s/v1/topk?q=%d&k=10&rerank=1", base, q), ""
	default:
		var sb strings.Builder
		sb.WriteString(`{"mode":"topk","sources":[`)
		for j := 0; j < 32; j++ {
			if j > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", (q+j*9)%300)
		}
		sb.WriteString(`],"k":10}`)
		return base + "/v1/batch", sb.String()
	}
}

// percentileMille is percentile with per-mille resolution, for p999.
func percentileMille(sorted []time.Duration, pm int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * pm / 1000
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
