package eval

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNDCGPerfectRanking(t *testing.T) {
	rel := []float64{3, 2, 1, 0}
	ranking := []int{0, 1, 2, 3}
	for _, p := range []int{1, 2, 4} {
		if got := NDCG(rel, ranking, p); math.Abs(got-1) > 1e-12 {
			t.Errorf("NDCG@%d of perfect ranking = %g, want 1", p, got)
		}
	}
}

func TestNDCGKnownValue(t *testing.T) {
	// Two items, grades 1 and 0, ranked worst-first:
	// DCG = 0/log2(2) + 1/log2(3); IDCG = 1/log2(2) = 1.
	rel := []float64{0, 1}
	got := NDCG(rel, []int{0, 1}, 2)
	want := 1 / math.Log2(3)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("NDCG = %g, want %g", got, want)
	}
}

func TestNDCGImperfectBelowOne(t *testing.T) {
	rel := []float64{3, 2, 1, 0}
	rev := []int{3, 2, 1, 0}
	if got := NDCG(rel, rev, 4); got >= 1 {
		t.Errorf("reversed ranking NDCG = %g, want < 1", got)
	}
}

func TestNDCGEdgeCases(t *testing.T) {
	if NDCG([]float64{0, 0}, []int{0, 1}, 2) != 1 {
		t.Error("all-zero relevance must give NDCG 1")
	}
	if NDCG([]float64{1}, []int{0}, 0) != 1 {
		t.Error("p = 0 must give NDCG 1")
	}
	// p beyond the ranking length clamps.
	if got := NDCG([]float64{1, 0}, []int{0, 1}, 10); math.Abs(got-1) > 1e-12 {
		t.Errorf("clamped NDCG = %g, want 1", got)
	}
}

func TestGradeByRank(t *testing.T) {
	// Ideal order: item 5 first, then 3, then 1; cutoffs 1, 2, 3: grades
	// 3, 2, 1 respectively, others 0.
	rel := GradeByRank(6, []int{5, 3, 1}, []int{1, 2, 3})
	want := []float64{0, 1, 0, 2, 0, 3}
	if !reflect.DeepEqual(rel, want) {
		t.Errorf("grades = %v, want %v", rel, want)
	}
}

func TestRankAndTopK(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.9}
	r := Rank(scores, nil)
	// Ties broken by index: 1 before 3.
	if !reflect.DeepEqual(r, []int{1, 3, 2, 0}) {
		t.Errorf("Rank = %v", r)
	}
	top := TopK(scores, 2, func(i int) bool { return i == 1 })
	if !reflect.DeepEqual(top, []int{3, 2}) {
		t.Errorf("TopK with skip = %v, want [3 2]", top)
	}
}

func TestKendallTau(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := KendallTau(a, a); got != 1 {
		t.Errorf("tau(a,a) = %g, want 1", got)
	}
	rev := []float64{4, 3, 2, 1}
	if got := KendallTau(a, rev); got != -1 {
		t.Errorf("tau(a,rev) = %g, want -1", got)
	}
	if got := KendallTau([]float64{1, 1}, []float64{2, 3}); got != 1 {
		t.Errorf("all-tied tau = %g, want 1 by convention", got)
	}
}

func TestSpearmanRho(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if got := SpearmanRho(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("rho(a,a) = %g", got)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if got := SpearmanRho(a, rev); math.Abs(got+1) > 1e-12 {
		t.Errorf("rho(a,rev) = %g, want -1", got)
	}
	// Monotone transform preserves rho = 1.
	squared := []float64{1, 4, 9, 16, 25}
	if got := SpearmanRho(a, squared); math.Abs(got-1) > 1e-12 {
		t.Errorf("rho under monotone transform = %g, want 1", got)
	}
}

func TestInversions(t *testing.T) {
	a := []int{10, 20, 30}
	if got := Inversions(a, a); got != 0 {
		t.Errorf("inversions(a,a) = %d", got)
	}
	// One adjacent swap = exactly one inversion (the Fig. 6h situation).
	if got := Inversions([]int{10, 30, 20}, a); got != 1 {
		t.Errorf("adjacent swap inversions = %d, want 1", got)
	}
	if got := Inversions([]int{30, 20, 10}, a); got != 3 {
		t.Errorf("full reversal inversions = %d, want 3", got)
	}
	// Items missing from one list are ignored.
	if got := Inversions([]int{10, 99, 20}, a); got != 0 {
		t.Errorf("inversions with foreign item = %d, want 0", got)
	}
}

func TestTopKOverlap(t *testing.T) {
	if got := TopKOverlap([]int{1, 2, 3}, []int{3, 2, 1}); got != 1 {
		t.Errorf("overlap = %g, want 1", got)
	}
	if got := TopKOverlap([]int{1, 2}, []int{3, 4}); got != 0 {
		t.Errorf("overlap = %g, want 0", got)
	}
	if got := TopKOverlap([]int{1, 2, 3, 4}, []int{1, 2}); got != 0.5 {
		t.Errorf("overlap = %g, want 0.5", got)
	}
	if got := TopKOverlap(nil, nil); got != 1 {
		t.Errorf("empty overlap = %g, want 1", got)
	}
}

// TestMetricsAgreeOnNoisyPerturbation: small score noise should leave all
// rank correlations near 1 — the property Exp-4 relies on when comparing
// DSR scores to conventional scores.
func TestMetricsAgreeOnNoisyPerturbation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = float64(i) // well-separated scores
			b[i] = a[i] + rng.Float64()*0.2
		}
		return KendallTau(a, b) > 0.9 && SpearmanRho(a, b) > 0.9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestNDCGMonotoneInRankQuality: swapping two correctly-ordered items can
// never raise NDCG.
func TestNDCGMonotoneInRankQuality(t *testing.T) {
	rel := []float64{3, 2, 1, 0, 0, 0}
	perfect := []int{0, 1, 2, 3, 4, 5}
	base := NDCG(rel, perfect, 6)
	for i := 0; i < 5; i++ {
		swapped := append([]int(nil), perfect...)
		swapped[i], swapped[i+1] = swapped[i+1], swapped[i]
		if got := NDCG(rel, swapped, 6); got > base+1e-12 {
			t.Errorf("swap at %d raised NDCG: %g > %g", i, got, base)
		}
	}
}

func TestPrecisionAtK(t *testing.T) {
	row := []float64{1.0, 0.9, 0.8, 0.7, 0.3, 0.2, 0.1}
	// Perfect top-3 (skip the query vertex 0): {1, 2, 3}.
	if p := PrecisionAtK(row, 0, []int{1, 2, 3}, 3); p != 1 {
		t.Errorf("perfect list: precision = %v, want 1", p)
	}
	// One miss.
	if p := PrecisionAtK(row, 0, []int{1, 2, 6}, 3); p != 2.0/3 {
		t.Errorf("one miss: precision = %v, want 2/3", p)
	}
	// Ties at the boundary: row2's 3rd best is 0.8, shared by items 2 and 3
	// — either counts.
	row2 := []float64{1.0, 0.9, 0.8, 0.8, 0.3}
	for _, got := range [][]int{{1, 2, 3}, {1, 3, 2}} {
		if p := PrecisionAtK(row2, 0, got, 3); p != 1 {
			t.Errorf("tie boundary %v: precision = %v, want 1", got, p)
		}
	}
	// Short result lists are penalized: 2 of 3 returned.
	if p := PrecisionAtK(row, 0, []int{1, 2}, 3); p != 2.0/3 {
		t.Errorf("short list: precision = %v, want 2/3", p)
	}
	// Degenerate k.
	if p := PrecisionAtK(row, 0, nil, 0); p != 1 {
		t.Errorf("k=0: precision = %v, want 1", p)
	}
}
