package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oipsr/graph"
	"oipsr/internal/matrixform"
	"oipsr/internal/naive"
	"oipsr/internal/partition"
	"oipsr/internal/simmat"
)

// sweepOracle computes damp * Q * prev * Q^T with the matrixform package,
// the independent definition of what one Sweep must produce (pinDiag off).
func sweepOracle(g *graph.Graph, prev *simmat.Matrix, damp float64) *simmat.Matrix {
	n := g.NumVertices()
	tmp, out := simmat.New(n), simmat.New(n)
	matrixform.Conjugate(g, prev, tmp, out)
	d := out.Data()
	for i := range d {
		d[i] *= damp
	}
	return out
}

// TestSweepMatchesConjugation: a single sweep equals Q S Q^T on arbitrary
// (not just identity-derived) symmetric inputs.
func TestSweepMatchesConjugation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		b := graph.NewBuilder(n, 0)
		b.EnsureVertices(n)
		for i := 0; i < rng.Intn(4*n); i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.MustBuild()
		plan, err := partition.BuildPlan(g, partition.Options{})
		if err != nil {
			return false
		}
		prev := simmat.New(n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.Float64()
				prev.Set(i, j, v)
				prev.Set(j, i, v)
			}
		}
		next := simmat.New(n) // all-zero satisfies the Sweep contract
		sw := NewSweeper(g, plan, false)
		damp := 0.3 + 0.6*rng.Float64()
		sw.Sweep(prev, next, damp, false)
		want := sweepOracle(g, prev, damp)
		return simmat.MaxDiff(next, want) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSweepBufferReuseInvariant: ping-pong reuse across many sweeps (the
// engines' pattern, relying on the no-reset optimization) stays consistent
// with fresh buffers every time.
func TestSweepBufferReuseInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 20, 60)
	plan, err := partition.BuildPlan(g, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSweeper(g, plan, false)

	// Ping-pong from identity, like DSR's T recurrence.
	a, b := simmat.NewIdentity(20), simmat.New(20)
	for k := 0; k < 6; k++ {
		sw.Sweep(a, b, 1, false)
		a, b = b, a
	}
	// Reference: fresh output buffer every sweep.
	ref := simmat.NewIdentity(20)
	for k := 0; k < 6; k++ {
		out := simmat.New(20)
		sw2 := NewSweeper(g, plan, false)
		sw2.Sweep(ref, out, 1, false)
		ref = out
	}
	if d := simmat.MaxDiff(a, ref); d > 1e-12 {
		t.Errorf("buffer reuse diverged from fresh buffers by %g", d)
	}
}

// TestChainBreakStillCorrect: a graph engineered so the preorder jump
// between two dissimilar subtree siblings costs more than a from-scratch
// rebuild, forcing a chain break; scores must be unaffected.
func TestChainBreakStillCorrect(t *testing.T) {
	b := graph.NewBuilder(0, 0)
	// Hub sets: I(20) = {0..9}, derived twins I(21), I(22) = I(20) +/- one
	// element; a second unrelated family I(23) = {10..19}, I(24) twin.
	for x := 0; x < 10; x++ {
		b.AddEdge(x, 20)
		b.AddEdge(x, 21)
		if x != 0 {
			b.AddEdge(x, 22)
		}
		b.AddEdge(10+x, 23)
		b.AddEdge(10+x, 24)
	}
	g := b.MustBuild()
	plan, err := partition.BuildPlan(g, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// At least two chains must exist (the two families cannot share).
	if len(plan.Roots) < 2 {
		t.Fatalf("expected >= 2 chain roots, got %v", plan.Roots)
	}
	s, _, err := Compute(g, Options{C: 0.6, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Twins fed by 10 identical sink sources: s = C/100 * 10 = C/10.
	if got := s.At(20, 21); got < 0.059 || got > 0.061 {
		t.Errorf("s(20,21) = %g, want C/10", got)
	}
	if got := s.At(23, 24); got < 0.059 || got > 0.061 {
		t.Errorf("s(23,24) = %g, want C/10", got)
	}
	// Cross-family pairs share nothing and their sources are all sinks,
	// so similarity stays 0.
	if got := s.At(20, 23); got != 0 {
		t.Errorf("s(20,23) = %g, want 0", got)
	}
	// And the whole matrix must agree with the naive oracle regardless of
	// where the plan broke its chains.
	want, err := naive.Compute(g, 0.6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d := simmat.MaxDiff(s, want); d > 1e-12 {
		t.Errorf("chain-broken plan diverged from oracle by %g", d)
	}
}

// TestDisableOuterSweepEquivalence at the sweep level (not just end-to-end).
func TestDisableOuterSweepEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomGraph(rng, 25, 100)
	plan, err := partition.BuildPlan(g, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prev := simmat.NewIdentity(25)
	a, b := simmat.New(25), simmat.New(25)
	NewSweeper(g, plan, false).Sweep(prev, a, 0.6, true)
	NewSweeper(g, plan, true).Sweep(prev, b, 0.6, true)
	if d := simmat.MaxDiff(a, b); d > 1e-12 {
		t.Errorf("outer sharing changed sweep output by %g", d)
	}
}

// TestAuxBytesScalesLinearly: the sweeper's buffers are O(n), the claim of
// Proposition 5.
func TestAuxBytesScalesLinearly(t *testing.T) {
	small := graph.MustFromEdges(10, [][2]int{{0, 1}, {1, 2}})
	big := graph.MustFromEdges(1000, [][2]int{{0, 1}, {1, 2}})
	ps, err := partition.BuildPlan(small, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := partition.BuildPlan(big, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSweeper(small, ps, false).AuxBytes()
	bb := NewSweeper(big, pb, false).AuxBytes()
	if bb > 120*s {
		t.Errorf("aux bytes grew superlinearly: %d -> %d for 100x vertices", s, bb)
	}
}
