package walkindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"slices"
)

// Format v2 posting codec.
//
// Format v2 stores the walk blocks of v2BlockVertices consecutive start
// vertices per posting block, each block independently decodable, with a
// byte-offset directory so a mapped loader can page single blocks on
// demand (mapped.go). Within a block, each walk is encoded as:
//
//	uvarint hdr = m<<1 | shared
//	uvarint first          — entry 0            (only when m > 0)
//	varint  delta × (m-1)  — entry[i]-entry[i-1] (zigzag)
//
// followed by an implicit tail for entries [m, k):
//
//	shared == 0: the tail is dead (-1). m is the walk's live length —
//	  walkFrom writes -1 from the first death onward, so the dead suffix
//	  is always canonical and never needs storing.
//	shared == 1: the tail is copied from the SAME fingerprint's walk of
//	  the PREVIOUS vertex in the block. Coupled walkers coalesce
//	  permanently once co-located (the edge choice depends only on
//	  (fingerprint, step, vertex)), so neighboring vertices' walks share
//	  identical suffixes — on hub-heavy graphs most of the index is these
//	  shared tails, and one uvarint replaces them. The first vertex of a
//	  block has no predecessor and always encodes shared == 0.
//
// The encoder picks whichever form stores fewer explicit entries, so the
// encoding is canonical given the block layout, and decode(encode(x)) == x
// exactly — the v1→v2→v1 round trip is byte-identical.

// v2BlockVertices is the number of start vertices per posting block. Small
// enough that a mapped point query decodes little beyond the row it needs
// (64 vertices × R×K×4 B ≈ 665 KB at R=200, K=13), large enough that
// suffix sharing between consecutive vertices gets traction and the
// directory stays tiny.
const v2BlockVertices = 64

// maxV2BlockVertices bounds the header-declared block size at load time.
const maxV2BlockVertices = 1 << 16

// maxV2Horizon caps k for format v2, tighter than maxHorizon: a shared
// walk decodes k entries from a single byte, so k bounds the decoder's
// allocation amplification per payload byte. Real horizons are the
// iteration counts of the Lizorkin bound — double digits.
const maxV2Horizon = 1 << 12

// maxV2BlockBytes is the absolute cap on one encoded posting block, over
// and above the per-block structural bound width*r*(5k+2); formatGuard
// keeps writable indexes comfortably below it.
const maxV2BlockBytes = 1 << 27

// v2NumBlocks returns ceil(rows / blockB), the posting-block count.
func v2NumBlocks(rows, blockB int64) int64 {
	if rows <= 0 {
		return 0
	}
	return (rows + blockB - 1) / blockB
}

// appendWalk appends one walk's v2 encoding to dst. prev is the same
// fingerprint's walk of the previous vertex in the block (nil for the
// block's first vertex).
func appendWalk(dst []byte, path, prev []int32) ([]byte, error) {
	k := len(path)
	live := 0
	for live < k && path[live] >= 0 {
		live++
	}
	for t := live; t < k; t++ {
		if path[t] != -1 {
			return nil, fmt.Errorf("walkindex: cannot encode non-canonical walk (entry %d after death is %d)", t, path[t])
		}
	}
	m, shared := live, false
	if prev != nil {
		s := k
		for s > 0 && path[s-1] == prev[s-1] {
			s--
		}
		// Strictly fewer explicit entries than the dead-tail form; the
		// shared prefix [0, s) is all live because s < live.
		if s < live {
			m, shared = s, true
		}
	}
	hdr := uint64(m) << 1
	if shared {
		hdr |= 1
	}
	dst = binary.AppendUvarint(dst, hdr)
	if m > 0 {
		dst = binary.AppendUvarint(dst, uint64(uint32(path[0])))
		for i := 1; i < m; i++ {
			dst = binary.AppendVarint(dst, int64(path[i])-int64(path[i-1]))
		}
	}
	return dst, nil
}

// decodeWalk decodes one walk from buf into dst (len k), resolving a
// shared tail against prev, and returns the bytes consumed. Checks are
// structural (well-formed varints, m <= k, entries fit int32); the
// semantic [0, n) range check runs over the whole decoded payload after
// the checksum, like the v1 reader's (see the load order in serialize.go).
func decodeWalk(buf []byte, dst, prev []int32) (int, error) {
	k := len(dst)
	hdr, w := binary.Uvarint(buf)
	if w <= 0 {
		return 0, fmt.Errorf("walkindex: malformed walk header varint")
	}
	pos := w
	shared := hdr&1 == 1
	m := int(hdr >> 1)
	if hdr>>1 > uint64(k) {
		return 0, fmt.Errorf("walkindex: walk declares %d explicit entries, horizon is %d", hdr>>1, k)
	}
	if shared && prev == nil {
		return 0, fmt.Errorf("walkindex: first walk of a block cannot share a tail")
	}
	if m > 0 {
		first, w := binary.Uvarint(buf[pos:])
		if w <= 0 || first > math.MaxInt32 {
			return 0, fmt.Errorf("walkindex: malformed walk first-entry varint")
		}
		pos += w
		cur := int64(first)
		dst[0] = int32(cur)
		for i := 1; i < m; i++ {
			d, w := binary.Varint(buf[pos:])
			if w <= 0 {
				return 0, fmt.Errorf("walkindex: malformed walk delta varint")
			}
			pos += w
			cur += d
			if cur < 0 || cur > math.MaxInt32 {
				return 0, fmt.Errorf("walkindex: walk delta accumulates out of int32 range")
			}
			dst[i] = int32(cur)
		}
	}
	if shared {
		copy(dst[m:], prev[m:])
	} else {
		for i := m; i < k; i++ {
			dst[i] = -1
		}
	}
	return pos, nil
}

// appendV2Block appends the encoding of one posting block — store-local
// vertices [vlo, vlo+width), all r walks each — to dst.
func appendV2Block(dst []byte, rowOf func(v int) []int32, vlo, width, k, r int) ([]byte, error) {
	var prevBlk []int32
	for v := vlo; v < vlo+width; v++ {
		blk := rowOf(v)
		for fp := 0; fp < r; fp++ {
			var prev []int32
			if prevBlk != nil {
				prev = prevBlk[fp*k : (fp+1)*k]
			}
			var err error
			dst, err = appendWalk(dst, blk[fp*k:(fp+1)*k], prev)
			if err != nil {
				return nil, err
			}
		}
		prevBlk = blk
	}
	return dst, nil
}

// decodeV2Block decodes one posting block into dst (width*r*k entries,
// vertex-major). The whole buffer must be consumed — trailing bytes inside
// a block are a forgery, not padding.
func decodeV2Block(buf []byte, dst []int32, width, k, r int) error {
	pos := 0
	for v := 0; v < width; v++ {
		for fp := 0; fp < r; fp++ {
			cur := dst[(v*r+fp)*k : (v*r+fp+1)*k]
			var prev []int32
			if v > 0 {
				prev = dst[((v-1)*r+fp)*k : ((v-1)*r+fp+1)*k]
			}
			w, err := decodeWalk(buf[pos:], cur, prev)
			if err != nil {
				return err
			}
			pos += w
		}
	}
	if pos != len(buf) {
		return fmt.Errorf("walkindex: %d trailing bytes inside posting block", len(buf)-pos)
	}
	return nil
}

// encodeV2Blocks encodes every posting block of a store with `rows` start
// vertices.
func encodeV2Blocks(rowOf func(v int) []int32, rows, k, r int) ([][]byte, error) {
	nb := int(v2NumBlocks(int64(rows), v2BlockVertices))
	blocks := make([][]byte, nb)
	for b := 0; b < nb; b++ {
		vlo := b * v2BlockVertices
		width := min(v2BlockVertices, rows-vlo)
		enc, err := appendV2Block(nil, rowOf, vlo, width, k, r)
		if err != nil {
			return nil, err
		}
		if len(enc) > maxV2BlockBytes {
			return nil, fmt.Errorf("%w: encoded posting block of %d bytes exceeds %d", ErrFormatLimits, len(enc), maxV2BlockBytes)
		}
		blocks[b] = enc
	}
	return blocks, nil
}

// writeV2 writes a v2 file: pre (the format header including the block
// size and count), the block directory derived from the block lengths, the
// concatenated blocks, and the CRC trailer over everything before it.
func writeV2(w io.Writer, pre []byte, blocks [][]byte, what string) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<16)
	if _, err := bw.Write(pre); err != nil {
		return fmt.Errorf("walkindex: writing %s header: %w", what, err)
	}
	var tmp [8]byte
	off := uint64(0)
	binary.LittleEndian.PutUint64(tmp[:], 0)
	if _, err := bw.Write(tmp[:]); err != nil {
		return fmt.Errorf("walkindex: writing %s directory: %w", what, err)
	}
	for _, blk := range blocks {
		off += uint64(len(blk))
		binary.LittleEndian.PutUint64(tmp[:], off)
		if _, err := bw.Write(tmp[:]); err != nil {
			return fmt.Errorf("walkindex: writing %s directory: %w", what, err)
		}
	}
	for _, blk := range blocks {
		if _, err := bw.Write(blk); err != nil {
			return fmt.Errorf("walkindex: writing %s blocks: %w", what, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("walkindex: writing %s blocks: %w", what, err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("walkindex: writing %s checksum: %w", what, err)
	}
	return nil
}

// v2MaxBlockLen bounds one encoded block's plausible byte length: at most
// 2 header bytes plus 5 bytes per explicit entry per walk.
func v2MaxBlockLen(width, k, r int64) int64 {
	return min(maxV2BlockBytes, width*r*(5*k+2))
}

// readV2Dir reads the v2 payload preamble — block size, block count, and
// the offset directory — validating structure as it goes. The directory is
// read incrementally (8 bytes at a time), so a forged block count on a
// short stream fails with a truncation error, not a huge allocation.
func readV2Dir(br *bufio.Reader, crc hash.Hash32, rows, k int64, section string) (blockB int64, dir []int64, err error) {
	if k > maxV2Horizon {
		return 0, nil, fmt.Errorf("walkindex: implausible v2 walk horizon k = %d", k)
	}
	var meta [8]byte
	if err := readFull(br, crc, meta[:], section+" v2 block sizes"); err != nil {
		return 0, nil, err
	}
	blockB = int64(binary.LittleEndian.Uint32(meta[0:]))
	nb := int64(binary.LittleEndian.Uint32(meta[4:]))
	if blockB < 1 || blockB > maxV2BlockVertices {
		return 0, nil, fmt.Errorf("walkindex: implausible v2 block size %d", blockB)
	}
	if nb != v2NumBlocks(rows, blockB) {
		return 0, nil, fmt.Errorf("walkindex: v2 block count %d does not tile %d vertices at block size %d", nb, rows, blockB)
	}

	dir = make([]int64, 0, min(nb+1, 1<<12))
	var obuf [8]byte
	prevOff := int64(0)
	for i := int64(0); i <= nb; i++ {
		if err := readFull(br, crc, obuf[:], section+" v2 directory"); err != nil {
			return 0, nil, err
		}
		o := binary.LittleEndian.Uint64(obuf[:])
		if o > math.MaxInt64 {
			return 0, nil, fmt.Errorf("walkindex: implausible v2 directory offset %d", o)
		}
		off := int64(o)
		if i == 0 && off != 0 {
			return 0, nil, fmt.Errorf("walkindex: v2 directory does not start at offset 0")
		}
		if off < prevOff {
			return 0, nil, fmt.Errorf("walkindex: v2 directory offsets not monotone")
		}
		dir = append(dir, off)
		prevOff = off
	}
	return blockB, dir, nil
}

// readV2Payload reads the v2 payload section — block size, block count,
// directory, posting blocks — decoding into one dense slice. Allocations
// grow with the bytes actually read (directory and blocks alike), so a
// forged header on a short stream fails with a truncation error after a
// proportional allocation; the residual amplification is bounded by
// maxV2Horizon (one shared-walk byte decodes to at most k entries).
func readV2Payload(br *bufio.Reader, crc hash.Hash32, rows, k, r int64, section string) ([]int32, error) {
	blockB, dir, err := readV2Dir(br, crc, rows, k, section)
	if err != nil {
		return nil, err
	}
	nb := int64(len(dir)) - 1

	paths := make([]int32, 0, min(rows*r*k, 1<<16))
	var blockBuf []byte
	for b := int64(0); b < nb; b++ {
		width := min(blockB, rows-b*blockB)
		blen := dir[b+1] - dir[b]
		if blen > v2MaxBlockLen(width, k, r) {
			return nil, fmt.Errorf("walkindex: implausible v2 block length %d", blen)
		}
		if int64(cap(blockBuf)) < blen {
			blockBuf = make([]byte, blen)
		}
		buf := blockBuf[:blen]
		if err := readFull(br, crc, buf, section+" v2 block"); err != nil {
			return nil, err
		}
		need := int(width * r * k)
		start := len(paths)
		paths = slices.Grow(paths, need)[:start+need]
		if err := decodeV2Block(buf, paths[start:], int(width), int(k), int(r)); err != nil {
			return nil, fmt.Errorf("walkindex: %s block %d: %w", section, b, err)
		}
	}
	return paths, nil
}
