package core

import (
	"fmt"
	"time"

	"oipsr/graph"
	"oipsr/internal/numeric"
	"oipsr/internal/partition"
	"oipsr/internal/simmat"
)

// Options configure an OIP-SR computation.
type Options struct {
	// C is the damping factor in (0,1). The paper's default is 0.6.
	C float64

	// K is the number of iterations. If zero, it is derived from Eps via
	// the Lizorkin bound (smallest K with C^(K+1) <= Eps).
	K int

	// Eps is the desired accuracy used when K == 0. Defaults to 1e-3 (the
	// paper's default) when both K and Eps are zero.
	Eps float64

	// StopDiff, when positive, stops early once the max-norm difference
	// between successive iterates drops to or below it. This is the
	// "observed iterations" stopping rule of Exp-3.
	StopDiff float64

	// Partition forwards to DMST-Reduce (candidate strategy, MST backend).
	Partition partition.Options

	// DisableOuter ablates outer partial-sums sharing (Section III-B),
	// leaving only inner sharing over the MST.
	DisableOuter bool

	// Workers sets the sweep worker-pool size: 1 means serial, anything
	// below 1 means runtime.GOMAXPROCS(0). Scores and operation counts are
	// bit-identical for every value (see the package comment).
	Workers int

	// Tile selects the tiled score-matrix backend when Tile.BlockSize > 0
	// (ComputeTiled only; Compute ignores it).
	Tile simmat.TileOptions
}

func (o *Options) normalize() error {
	if o.C == 0 {
		o.C = 0.6
	}
	if !(o.C > 0 && o.C < 1) {
		return fmt.Errorf("core: damping factor %v outside (0,1)", o.C)
	}
	if o.K < 0 {
		return fmt.Errorf("core: negative iteration count %d", o.K)
	}
	if o.K == 0 {
		if o.Eps == 0 {
			o.Eps = 1e-3
		}
		if !(o.Eps > 0 && o.Eps < 1) {
			return fmt.Errorf("core: accuracy eps %v outside (0,1)", o.Eps)
		}
		o.K = numeric.IterationsConventional(o.C, o.Eps)
	}
	return nil
}

// Stats describes the work a computation performed, split into the two
// phases of Fig. 6b ("Build MST" vs "Share Sums") plus the operation counts
// and sharing metrics that substantiate the d' < d claim of Proposition 5.
type Stats struct {
	Iterations int           // iterations actually executed
	PlanTime   time.Duration // DMST-Reduce (build MST) phase
	SweepTime  time.Duration // share-sums phase (all iterations)

	InnerAdds  int64 // scalar additions on inner partial sums
	OuterAdds  int64 // scalar additions on outer partial sums
	AuxBytes   int64 // auxiliary memory: plan + sweep buffers (the paper's "intermediate memory")
	StateBytes int64 // n^2 state the engine holds (two score matrices)

	NumSets          int     // non-empty in-neighbor sets
	PlanAdditions    int     // per-sweep vector ops with sharing (MST weight)
	ScratchAdditions int     // per-sweep vector ops without sharing (psum-SR)
	ShareRatio       float64 // fraction of additions avoided
	AvgDiff          float64 // d_(+): mean symmetric-difference size on shared edges
	FinalDiff        float64 // max-norm difference of the last two iterates (0 if K=0)

	// Tile reports the tile store's accounting (ComputeTiled only).
	Tile simmat.TileMetrics
}

// Compute runs OIP-SR (Algorithm 1) on g and returns s_K plus statistics.
func Compute(g *graph.Graph, opt Options) (*simmat.Matrix, *Stats, error) {
	if err := opt.normalize(); err != nil {
		return nil, nil, err
	}
	st := &Stats{}

	t0 := time.Now()
	plan, err := partition.BuildPlan(g, opt.Partition)
	if err != nil {
		return nil, nil, err
	}
	st.PlanTime = time.Since(t0)
	st.NumSets = plan.NumSets
	st.PlanAdditions = plan.Additions
	st.ScratchAdditions = plan.ScratchAdditions
	st.ShareRatio = plan.ShareRatio()
	st.AvgDiff = plan.AvgDiff

	n := g.NumVertices()
	prev := simmat.NewIdentity(n)
	next := simmat.New(n)
	sw := NewParallelSweeper(g, plan, opt.DisableOuter, opt.Workers)

	t1 := time.Now()
	for iter := 0; iter < opt.K; iter++ {
		sw.Sweep(prev, next, opt.C, true)
		st.Iterations++
		if opt.StopDiff > 0 {
			st.FinalDiff = simmat.MaxDiffWorkers(prev, next, sw.Workers())
			prev, next = next, prev
			if st.FinalDiff <= opt.StopDiff {
				break
			}
			continue
		}
		prev, next = next, prev
	}
	st.SweepTime = time.Since(t1)
	sws := sw.Stats()
	st.InnerAdds, st.OuterAdds = sws.InnerAdds, sws.OuterAdds
	st.AuxBytes = sw.AuxBytes() + plan.Bytes()
	st.StateBytes = prev.Bytes() + next.Bytes()
	return prev, st, nil
}

// ComputeTiled runs OIP-SR against the tiled score-matrix backend selected
// by opt.Tile: both iterates live in one TileStore, so opt.Tile's
// MaxMemoryBytes bounds the whole n^2 state, with evicted tiles spilled to
// disk. Scores are bit-identical to Compute for every block size and worker
// count. The caller owns the result: Close it to release the store and its
// spill files.
func ComputeTiled(g *graph.Graph, opt Options) (*simmat.Tiled, *Stats, error) {
	if err := opt.normalize(); err != nil {
		return nil, nil, err
	}
	store, err := simmat.NewTileStore(opt.Tile)
	if err != nil {
		return nil, nil, err
	}
	st := &Stats{}

	t0 := time.Now()
	plan, err := partition.BuildPlan(g, opt.Partition)
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	st.PlanTime = time.Since(t0)
	st.NumSets = plan.NumSets
	st.PlanAdditions = plan.Additions
	st.ScratchAdditions = plan.ScratchAdditions
	st.ShareRatio = plan.ShareRatio()
	st.AvgDiff = plan.AvgDiff

	n := g.NumVertices()
	prev, err := store.NewIdentity(n)
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	next, err := store.NewTiled(n)
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	sw := NewParallelSweeper(g, plan, opt.DisableOuter, opt.Workers)

	t1 := time.Now()
	for iter := 0; iter < opt.K; iter++ {
		if err := sw.SweepTiled(prev, next, opt.C, true); err != nil {
			store.Close()
			return nil, nil, err
		}
		st.Iterations++
		if opt.StopDiff > 0 {
			st.FinalDiff, err = simmat.MaxDiffTiled(prev, next)
			if err != nil {
				store.Close()
				return nil, nil, err
			}
			prev, next = next, prev
			if st.FinalDiff <= opt.StopDiff {
				break
			}
			continue
		}
		prev, next = next, prev
	}
	st.SweepTime = time.Since(t1)
	sws := sw.Stats()
	st.InnerAdds, st.OuterAdds = sws.InnerAdds, sws.OuterAdds
	st.AuxBytes = sw.AuxBytes() + plan.Bytes()
	st.StateBytes = prev.Bytes() + next.Bytes()
	next.Release()
	st.Tile = store.Metrics()
	return prev, st, nil
}
