package engine

import (
	"context"

	"oipsr/graph"
	"oipsr/internal/prank"
	"oipsr/internal/simmat"
)

func init() { Register(prankEngine{base{PRank}}) }

// prankEngine is Penetrating Rank: SimRank generalized to in- and
// out-links with OIP sharing in both directions.
type prankEngine struct{ base }

func (prankEngine) Caps() Caps { return Caps{AllPairs: true} }

func (prankEngine) Compute(_ context.Context, g *graph.Graph, p Params) (simmat.Source, *Stats, error) {
	m, st, err := prank.Compute(g, prank.Options{
		CIn:       p.C,
		COut:      p.COut,
		Lambda:    p.Lambda,
		K:         p.K,
		Eps:       p.Eps,
		Partition: partitionOptions(p),
		Workers:   p.Workers,
	})
	if err != nil {
		return nil, nil, err
	}
	return m, &Stats{
		Algorithm:   PRank,
		Iterations:  st.Iterations,
		PlanTime:    st.PlanTime,
		ComputeTime: st.SweepTime,
		InnerAdds:   st.InnerAdds,
		OuterAdds:   st.OuterAdds,
		AuxBytes:    st.AuxBytes,
		StateBytes:  simmat.StateBytes(g.NumVertices(), 4),
		ShareRatio:  (st.InShareRatio + st.OutShareRatio) / 2,
	}, nil
}
